// Journey extraction: turns the parent pointers of a time query into a
// human-readable itinerary (legs with trains, boarding/alighting stations
// and times). Used by the example applications.
//
// Note on semantics: the realistic time-dependent model does not track
// which physical train you sit in between route nodes of the same route —
// switching to another train of the same route at a shared stop is free
// (standard behaviour of the model [23]). Legs are therefore split whenever
// the trip actually used changes, even mid-route.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "algo/time_query.hpp"
#include "graph/profile.hpp"
#include "graph/td_graph.hpp"
#include "timetable/timetable.hpp"

namespace pconn {

struct JourneyLeg {
  TrainId train = 0;
  RouteId route = 0;
  StationId from = kInvalidStation;
  StationId to = kInvalidStation;
  Time dep = 0;  // absolute departure at `from`
  Time arr = 0;  // absolute arrival at `to`
};

struct Journey {
  StationId source = kInvalidStation;
  StationId target = kInvalidStation;
  Time departure = 0;  // requested earliest departure
  Time arrival = kInfTime;
  std::vector<JourneyLeg> legs;

  std::size_t num_transfers() const {
    return legs.empty() ? 0 : legs.size() - 1;
  }
};

/// Reconstructs the journey to `target` after q.run(source, departure).
/// std::nullopt if the target is unreachable. Templated over the time
/// query's queue policy (explicitly instantiated for the shipped policies
/// in journey.cpp).
template <typename Queue>
std::optional<Journey> extract_journey(const Timetable& tt, const TdGraph& g,
                                       const TimeQueryT<Queue>& q,
                                       StationId source, Time departure,
                                       StationId target);

/// Allocation-free variant for warm sessions: reuses `out`'s leg vector and
/// `path_scratch`. Returns false (leaving `out` cleared of legs) when the
/// target is unreachable.
template <typename Queue>
bool extract_journey_into(const Timetable& tt, const TdGraph& g,
                          const TimeQueryT<Queue>& q, StationId source,
                          Time departure, StationId target,
                          std::vector<NodeId>& path_scratch, Journey& out);

/// Multi-line plain-text rendering for the examples.
std::string describe_journey(const Timetable& tt, const Journey& j);

/// Materializes the concrete journey behind every connection point of a
/// reduced profile dist(source, target, ·): one time query per point.
/// Points whose journey cannot be reconstructed (never happens for
/// profiles produced by the engines in this library) are skipped.
std::vector<Journey> profile_journeys(const Timetable& tt, const TdGraph& g,
                                      const Profile& profile, StationId source,
                                      StationId target);

/// The latest profile point that still reaches the target by `deadline`
/// (absolute time), i.e. "when is the last bus I can take?". Returns
/// kNoConn when no point makes it.
std::uint32_t latest_departure_by(const Profile& profile, Time deadline);

}  // namespace pconn
