#include "algo/journey.hpp"

#include <algorithm>
#include <sstream>

#include "util/format.hpp"

namespace pconn {

namespace detail {

/// The trip of route r actually boarded at position k when the rider is
/// ready at absolute time t: the trip with the next departure at stop k
/// (cyclically), ties broken by earliest arrival at k+1.
TrainId journey_trip_used(const Timetable& tt, RouteId r, std::uint32_t k,
                          Time t) {
  const Route& route = tt.route(r);
  Time best_wait = kInfTime;
  Time best_arr = kInfTime;
  TrainId best = route.trips.front();
  for (TrainId id : route.trips) {
    const Trip& trip = tt.trip(id);
    Time wait = delta(t, trip.departures[k], tt.period());
    Time arr_rel = wait + (trip.arrivals[k + 1] - trip.departures[k]);
    if (wait < best_wait || (wait == best_wait && arr_rel < best_arr)) {
      best_wait = wait;
      best_arr = arr_rel;
      best = id;
    }
  }
  return best;
}

RouteId route_of_node(const Timetable& tt, const TdGraph& g, NodeId v) {
  // v is route_node(r, k): route nodes are numbered contiguously per route
  // after the station nodes, so binary-search the route whose first node is
  // the largest one <= v.
  std::uint32_t lo = 0, hi = static_cast<std::uint32_t>(tt.num_routes());
  while (lo + 1 < hi) {
    std::uint32_t mid = (lo + hi) / 2;
    if (g.route_node(mid, 0) <= v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace detail

template <typename Queue>
bool extract_journey_into(const Timetable& tt, const TdGraph& g,
                          const TimeQueryT<Queue>& q, StationId source,
                          Time departure, StationId target,
                          std::vector<NodeId>& path_scratch, Journey& j) {
  j.source = source;
  j.target = target;
  j.departure = departure;
  j.arrival = kInfTime;
  j.legs.clear();

  const NodeId dst = g.station_node(target);
  if (q.arrival_at_node(dst) == kInfTime) return false;

  // Node path from source to target.
  std::vector<NodeId>& path = path_scratch;
  path.clear();
  for (NodeId v = dst; v != kInvalidNode; v = q.parent(v)) path.push_back(v);
  std::reverse(path.begin(), path.end());

  j.arrival = q.arrival_at_node(dst);

  // Walk the path; every travel edge (route node -> route node) contributes
  // to a leg. Identify the trip from the tail's arrival time.
  journey_legs_from_path(
      tt, g, std::span<const NodeId>(path),
      [&](std::size_t idx) { return q.arrival_at_node(path[idx]); }, j);
  return true;
}

template <typename Queue>
std::optional<Journey> extract_journey(const Timetable& tt, const TdGraph& g,
                                       const TimeQueryT<Queue>& q,
                                       StationId source, Time departure,
                                       StationId target) {
  Journey j;
  std::vector<NodeId> path;
  if (!extract_journey_into(tt, g, q, source, departure, target, path, j)) {
    return std::nullopt;
  }
  return j;
}

// Explicit instantiations for the shipped time-query policies.
#define PCONN_INSTANTIATE_JOURNEY(Q)                                          \
  template std::optional<Journey> extract_journey<Q>(                         \
      const Timetable&, const TdGraph&, const TimeQueryT<Q>&, StationId,      \
      Time, StationId);                                                       \
  template bool extract_journey_into<Q>(                                      \
      const Timetable&, const TdGraph&, const TimeQueryT<Q>&, StationId,      \
      Time, StationId, std::vector<NodeId>&, Journey&);
PCONN_INSTANTIATE_JOURNEY(TimeBinaryQueue)
PCONN_INSTANTIATE_JOURNEY(TimeQuaternaryQueue)
PCONN_INSTANTIATE_JOURNEY(TimeLazyQueue)
PCONN_INSTANTIATE_JOURNEY(TimeBucketQueue)
#undef PCONN_INSTANTIATE_JOURNEY

std::vector<Journey> profile_journeys(const Timetable& tt, const TdGraph& g,
                                      const Profile& profile, StationId source,
                                      StationId target) {
  std::vector<Journey> out;
  out.reserve(profile.size());
  TimeQuery q(tt, g);
  for (const ProfilePoint& p : profile) {
    q.run(source, p.dep, target);
    auto j = extract_journey(tt, g, q, source, p.dep, target);
    if (j) out.push_back(std::move(*j));
  }
  return out;
}

std::uint32_t latest_departure_by(const Profile& profile, Time deadline) {
  // Arrivals are strictly increasing in a reduced profile: binary search
  // the last point with arr <= deadline.
  std::uint32_t lo = 0, hi = static_cast<std::uint32_t>(profile.size());
  while (lo < hi) {
    std::uint32_t mid = (lo + hi) / 2;
    if (profile[mid].arr <= deadline) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? kNoConn : lo - 1;
}

std::string describe_journey(const Timetable& tt, const Journey& j) {
  std::ostringstream out;
  out << tt.station_name(j.source) << " -> " << tt.station_name(j.target)
      << ", ready at " << format_clock(j.departure, tt.period()) << ", arrive "
      << format_clock(j.arrival, tt.period()) << " ("
      << j.num_transfers() << " transfer" << (j.num_transfers() == 1 ? "" : "s")
      << ")\n";
  for (const JourneyLeg& leg : j.legs) {
    out << "  " << format_clock(leg.dep, tt.period()) << "  trip " << leg.train
        << " (route " << leg.route << ")  " << tt.station_name(leg.from)
        << " -> " << tt.station_name(leg.to) << ", arr "
        << format_clock(leg.arr, tt.period()) << "\n";
  }
  return out.str();
}

}  // namespace pconn
