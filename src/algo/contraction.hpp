// Time-dependent core contraction (in the spirit of time-dependent
// contraction hierarchies, adapted to the periodic public-transit model).
//
// contract_graph() removes route nodes from the time-dependent graph in
// cost order and emits the OverlayGraph (graph/overlay_graph.hpp) the
// core-routed query engines run on. The machinery, in brief:
//
//   * node ordering — a lazy-update priority queue (the existing
//     LazyDAryHeap policy) keyed by edge difference and shortcut depth:
//     key = 8 * (in*out - in - out) + 2 * level, recomputed at pop and
//     reinserted when stale (the classic lazy CH rule). Stations are never
//     candidates;
//   * parallel rounds — an independent batch (no two selected nodes
//     adjacent) is drawn from the queue and simulated concurrently on the
//     ThreadPool, one arena-backed scratch workspace per worker (pinned to
//     the worker's NUMA node); commits stay serial, so the result is
//     byte-identical for every thread count;
//   * witness-bounded shortcuts — each neighbor pair (u, v, w) first runs
//     a settle-capped upper-bound Dijkstra (per-edge maximum travel times)
//     from u avoiding v: when that bound is <= the pair's minimum linked
//     travel time the shortcut can never win at any departure time and is
//     dropped. Surviving pairs link their TTFs (link_edge_ttfs below, an
//     arrival_tn_sorted-style composition) and shortcuts landing on an
//     existing shortcut of the same pair are merged (pointwise min =
//     point-set union + cyclic domination pruning);
//   * core freeze — a node whose contraction would exceed the shortcut or
//     hop caps simply stays in the core. Exactness never depends on the
//     caps; they only trade preprocessing/graph size against query speed.
#pragma once

#include <cstdint>

#include "graph/overlay_graph.hpp"
#include "graph/td_graph.hpp"
#include "graph/ttf.hpp"
#include "graph/ttf_pool.hpp"
#include "timetable/timetable.hpp"

namespace pconn {

struct OverlayContractionOptions {
  /// Worker threads for the simulation phase (commits are serial; the
  /// overlay is identical for every value).
  unsigned threads = 1;
  /// Independent nodes ordered per parallel round. Fixed (not scaled by
  /// `threads`) so the contraction order — and thus the overlay — does not
  /// depend on the thread count.
  std::uint32_t batch_size = 32;
  /// Freeze a node if contracting it would insert more shortcut edges.
  std::uint32_t max_new_edges = 64;
  /// Freeze a node whose surviving shortcuts exceed the edges it removes
  /// by more than this — the core-size/query-speed dial: sparse railway
  /// hubs freeze early (their fan-outs would outgrow the settled-node
  /// savings), dense bus chains contract away entirely.
  std::int32_t max_edge_diff = 0;
  /// Freeze a node if a required shortcut would span more flat edges.
  std::uint32_t max_hops = 24;
  /// Settle cap of each witness search (0 disables witnessing — every
  /// candidate shortcut is kept; still exact, just bigger).
  std::uint32_t witness_settles = 48;
};

/// Runs the contraction and returns the overlay. Deterministic in
/// (tt, g, opt ignoring threads).
OverlayGraph contract_graph(const Timetable& tt, const TdGraph& g,
                            const OverlayContractionOptions& opt = {});

// --- TTF composition primitives (exposed for the property tests) ---------

/// Link: the exact travel-time function of traversing word `a` and then
/// word `b` (packed TdGraph words against `pool`), as experienced at a's
/// tail. Constant words compose by shifting departures/durations; a
/// leading TTF evaluates the second leg at its (ascending) arrival times
/// via the pool's sorted-merge kernel. The result is pruned (FIFO).
/// At least one word must be non-constant.
Ttf link_edge_ttfs(const TtfPool& pool, std::uint32_t a, std::uint32_t b);

/// Merge: the pointwise minimum of two non-constant words — the union of
/// their connection points with dominated points pruned.
Ttf merge_edge_ttfs(const TtfPool& pool, std::uint32_t a, std::uint32_t b);

/// [min over t, max over t] of a word's travel time (constant words:
/// weight twice; empty functions: {kInfTime, kInfTime}). The witness
/// search's edge bounds.
std::pair<Time, Time> word_cost_bounds(const TtfPool& pool, std::uint32_t w,
                                       Time period);

}  // namespace pconn
