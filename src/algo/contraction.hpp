// Time-dependent core contraction (in the spirit of time-dependent
// contraction hierarchies, adapted to the periodic public-transit model).
//
// contract_graph() removes route nodes from the time-dependent graph in
// cost order and emits the OverlayGraph (graph/overlay_graph.hpp) the
// core-routed query engines run on. The machinery, in brief:
//
//   * node ordering — a lazy-update priority queue (the existing
//     LazyDAryHeap policy) keyed by edge difference and shortcut depth:
//     key = 8 * (in*out - in - out) + 2 * level, recomputed at pop and
//     reinserted when stale (the classic lazy CH rule). Stations are never
//     candidates;
//   * parallel rounds — an independent batch (no two selected nodes
//     adjacent) is drawn from the queue and simulated concurrently on the
//     ThreadPool, one arena-backed scratch workspace per worker (pinned to
//     the worker's NUMA node); commits stay serial, so the result is
//     byte-identical for every thread count;
//   * witness-bounded shortcuts — each neighbor pair (u, v, w) first runs
//     a settle-capped upper-bound Dijkstra (per-edge maximum travel times)
//     from u avoiding v: when that bound is <= the pair's minimum linked
//     travel time the shortcut can never win at any departure time and is
//     dropped. Surviving pairs link their TTFs (link_edge_ttfs below, an
//     arrival_tn_sorted-style composition) and shortcuts landing on an
//     existing shortcut of the same pair are merged (pointwise min =
//     point-set union + cyclic domination pruning);
//   * core freeze — a node whose contraction would exceed the shortcut or
//     hop caps simply stays in the core. Exactness never depends on the
//     caps; they only trade preprocessing/graph size against query speed.
#pragma once

#include <cstdint>

#include "graph/overlay_graph.hpp"
#include "graph/td_graph.hpp"
#include "graph/ttf.hpp"
#include "graph/ttf_pool.hpp"
#include "timetable/timetable.hpp"
#include "util/fault_injector.hpp"

namespace pconn {

struct OverlayContractionOptions {
  /// Worker threads for the simulation phase (commits are serial; the
  /// overlay is identical for every value).
  unsigned threads = 1;
  /// Independent nodes ordered per parallel round. Fixed (not scaled by
  /// `threads`) so the contraction order — and thus the overlay — does not
  /// depend on the thread count.
  std::uint32_t batch_size = 32;
  /// Freeze a node if contracting it would insert more shortcut edges.
  std::uint32_t max_new_edges = 64;
  /// Freeze a node whose surviving shortcuts exceed the edges it removes
  /// by more than this — the core-size/query-speed dial: sparse railway
  /// hubs freeze early (their fan-outs would outgrow the settled-node
  /// savings), dense bus chains contract away entirely.
  std::int32_t max_edge_diff = 0;
  /// Freeze a node if a required shortcut would span more flat edges.
  std::uint32_t max_hops = 24;
  /// Settle cap of each witness search (0 disables witnessing — every
  /// candidate shortcut is kept; still exact, just bigger). Live overlays
  /// MUST contract with 0: witness decisions bake travel-time bounds into
  /// the overlay's *structure*, so a later delay could invalidate them and
  /// incremental re-link (relink_overlay below) would no longer reproduce
  /// what a fresh contraction builds.
  std::uint32_t witness_settles = 48;
  /// Optional deterministic fault hook: checked once per node simulated on
  /// a contraction worker (FaultInjector::Site::kContractionWorker). The
  /// injected exception surfaces at contract_graph's caller via the
  /// ThreadPool join. Null in production.
  FaultInjector* faults = nullptr;
};

/// Runs the contraction and returns the overlay. Deterministic in
/// (tt, g, opt ignoring threads).
OverlayGraph contract_graph(const Timetable& tt, const TdGraph& g,
                            const OverlayContractionOptions& opt = {});

// --- TTF composition primitives (exposed for the property tests) ---------

/// Link: the exact travel-time function of traversing word `a` and then
/// word `b` (packed TdGraph words against `pool`), as experienced at a's
/// tail. Constant words compose by shifting departures/durations; a
/// leading TTF evaluates the second leg at its (ascending) arrival times
/// via the pool's sorted-merge kernel. The result is pruned (FIFO).
/// At least one word must be non-constant.
Ttf link_edge_ttfs(const TtfPool& pool, std::uint32_t a, std::uint32_t b);

/// Merge: the pointwise minimum of two non-constant words — the union of
/// their connection points with dominated points pruned.
Ttf merge_edge_ttfs(const TtfPool& pool, std::uint32_t a, std::uint32_t b);

/// [min over t, max over t] of a word's travel time (constant words:
/// weight twice; empty functions: {kInfTime, kInfTime}). The witness
/// search's edge bounds.
std::pair<Time, Time> word_cost_bounds(const TtfPool& pool, std::uint32_t w,
                                       Time period);

// --- incremental re-link (the live-update fast path, src/live/) -----------
//
// A delay event perturbs the travel-time functions of one route's flat
// edges but usually leaves the graph's *structure* untouched. When the old
// overlay was contracted without witness pruning, every structural decision
// the contraction made — the lazy ordering keys (in/out degree + level),
// the freeze caps, which candidate pairs were kept — depends only on the
// topology and on which functions are empty. If the new graph has identical
// topology, identical edge words, and an identical emptiness pattern, a
// fresh contraction would therefore rebuild the *same* overlay structure
// with the same shortcut records in the same order; only the TTF payloads
// differ. relink_overlay exploits that: it diffs the base pools, closes the
// changed flat edges over the shortcut provenance DAG (the reverse index in
// graph/overlay_graph.hpp), recomputes exactly the affected shortcut TTFs
// with the same link/merge kernels in record order (records only reference
// earlier records, so record order is a topological order of the DAG), and
// splices every unchanged function range into the new pool verbatim
// (TtfPool::append_copy). The result is byte-identical to re-contracting
// from scratch — tests/live_test.cpp proves it at every node — at a
// fraction of the cost (bench/bench_liveupdate.cpp gates the ratio).

enum class RelinkStatus : std::uint8_t {
  kRelinked = 0,           // overlay valid, byte-identical to re-contraction
  kStructureChanged = 1,   // topology/words/emptiness differ, or the old
                           // overlay was witness-pruned: full rebuild needed
  kBlastRadiusExceeded = 2,  // affected shortcuts exceed the cap
  kDeadlineExceeded = 3,     // ran past the deadline mid-recompute
};

struct RelinkOptions {
  /// Abort with kBlastRadiusExceeded when more shortcut records than this
  /// are affected — the knee where recomputing approaches a full rebuild
  /// and the degradation path (flat engines + background re-contraction)
  /// is the better trade.
  std::uint32_t blast_radius_cap = std::numeric_limits<std::uint32_t>::max();
  /// Wall-clock budget in ms; 0 disables. Checked between recomputes, so a
  /// single huge TTF can overshoot by one link/merge.
  double deadline_ms = 0.0;
  /// Deterministic fault hook (kRelinkShortcut, kPoolAppend, kDeadline
  /// sites); injected exceptions propagate to the caller mid-rebuild, which
  /// is exactly what the degradation tests exercise. Null in production.
  FaultInjector* faults = nullptr;
};

struct RelinkStats {
  std::uint32_t changed_base_ttfs = 0;   // base functions whose points differ
  std::uint32_t changed_flat_edges = 0;  // flat edges riding a changed TTF
  std::uint32_t affected_shortcuts = 0;  // provenance closure size
  std::uint32_t recomputed_functions = 0;  // re-added base + relinked shortcut
  std::uint64_t copied_points = 0;       // spliced verbatim via append_copy
  std::uint64_t recomputed_points = 0;   // rebuilt through link/merge
  double time_ms = 0.0;
};

struct RelinkResult {
  RelinkStatus status = RelinkStatus::kStructureChanged;
  RelinkStats stats;
  OverlayGraph overlay;  // meaningful only when status == kRelinked
};

/// Incrementally re-links `old_ov` (contracted from (tt_old-equivalent,
/// g_old)) against the perturbed graph `g_new`. `tt` is the NEW timetable
/// (only its period/transfer times are consulted; both must be unchanged —
/// anything else reports kStructureChanged). Never throws on its own;
/// injected faults (opt.faults) and allocation failures propagate.
RelinkResult relink_overlay(const Timetable& tt, const TdGraph& g_new,
                            const TdGraph& g_old, const OverlayGraph& old_ov,
                            const RelinkOptions& opt = {});

}  // namespace pconn
