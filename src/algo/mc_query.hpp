// Multi-criteria time queries — the paper's future-work direction
// (Section 6: "it will be interesting to incorporate multi-criteria
// connections, e.g., minimizing the number of transfers").
//
// Computes, for a fixed departure time, the Pareto front over
// (arrival time, number of boardings) at every station: the classic
// Martins-style multi-label Dijkstra specialized to two criteria. Labels
// are popped in lexicographic (arrival, boardings) order, so a popped
// label is Pareto-optimal iff its boarding count beats the best seen at
// its node — dominance tests are O(1) against a per-node minimum.
//
// The queue is a compile-time policy like every other engine's
// (queue_policy.hpp): keys are the composite (arrival << kMcKeyShift) |
// boardings, so lexicographic order is plain integer order. A multi-label
// search holds several live entries per node, which rules out addressable
// policies (they keep one key per id) — the lazy heap at arity 2 is the
// former std::priority_queue, and the bucket queue applies because pops
// are monotone in the composite key (arrival never decreases; at equal
// arrival the boarding count never decreases along a relaxation).
#pragma once

#include <span>
#include <vector>

#include "algo/counters.hpp"
#include "algo/queue_policy.hpp"
#include "algo/relax_batch.hpp"
#include "algo/workspace.hpp"
#include "graph/td_graph.hpp"
#include "timetable/timetable.hpp"
#include "util/epoch_array.hpp"

namespace pconn {

struct McLabel {
  Time arr;               // absolute arrival
  std::uint32_t boards;   // vehicles boarded so far (transfers = boards - 1)
  bool operator==(const McLabel&) const = default;
};

/// Template over the multi-criteria queue policy (queue_policy.hpp);
/// definitions in mc_query.cpp instantiate the shipped policies.
template <typename Queue = McBinaryQueue>
class McTimeQueryT {
  static_assert(!Queue::kAddressable,
                "multi-label search keeps several live queue entries per "
                "node; addressable (one-key-per-id) policies cannot run it");

 public:
  /// `ws` (optional) places all scratch — the queue, the per-node Pareto
  /// fronts and the dominance array — in the workspace's arena.
  McTimeQueryT(const Timetable& tt, const TdGraph& g,
               QueryWorkspace* ws = nullptr);

  /// Pareto search from `source` at absolute time `departure`. Journeys
  /// with more than `max_boards` boardings are cut off (they are almost
  /// never Pareto-optimal in practice and bounding them guarantees
  /// termination on free-transfer cycles). Capped at 2^kMcKeyShift - 1 so
  /// the boarding count fits the composite key's low bits.
  void run(StationId source, Time departure, std::uint32_t max_boards = 16);

  /// Pareto front at a station: arrival strictly increasing, boardings
  /// strictly decreasing. Empty if unreachable. The front's first entry is
  /// the earliest arrival (equals TimeQuery), the last the fewest-boarding
  /// alternative.
  std::span<const McLabel> pareto(StationId s) const;

  const QueryStats& stats() const { return stats_; }

  /// Relax-loop phasing (algo/relax_batch.hpp); bit-identical results and
  /// accounting in both modes.
  void set_relax_mode(RelaxMode m) { relax_.mode = m; }
  RelaxMode relax_mode() const { return relax_.mode; }
  void set_relax_options(RelaxOptions r) { relax_ = r; }
  const RelaxOptions& relax_options() const { return relax_; }

 private:
  using Front = std::vector<McLabel, ArenaAllocator<McLabel>>;

  const Timetable& tt_;
  const TdGraph& g_;
  Queue queue_;
  // Per node: permanent Pareto labels (cleared via touched_ per run; the
  // vectors keep their capacity across queries).
  std::vector<Front, ArenaAllocator<Front>> fronts_;
  EpochArray<std::uint32_t> min_boards_;
  RelaxBatch batch_;  // gather/eval scratch of the batch relax mode
  RelaxOptions relax_;
  QueryStats stats_;
  std::vector<NodeId, ArenaAllocator<NodeId>> touched_;
};

/// The paper-era default: the former std::priority_queue configuration.
using McTimeQuery = McTimeQueryT<>;

}  // namespace pconn
