// Multi-criteria time queries — the paper's future-work direction
// (Section 6: "it will be interesting to incorporate multi-criteria
// connections, e.g., minimizing the number of transfers").
//
// Computes, for a fixed departure time, the Pareto front over
// (arrival time, number of boardings) at every station: the classic
// Martins-style multi-label Dijkstra specialized to two criteria. Labels
// are popped in lexicographic (arrival, boardings) order, so a popped
// label is Pareto-optimal iff its boarding count beats the best seen at
// its node — dominance tests are O(1) against a per-node minimum.
#pragma once

#include <span>
#include <vector>

#include "algo/counters.hpp"
#include "graph/td_graph.hpp"
#include "timetable/timetable.hpp"
#include "util/epoch_array.hpp"

namespace pconn {

struct McLabel {
  Time arr;               // absolute arrival
  std::uint32_t boards;   // vehicles boarded so far (transfers = boards - 1)
  bool operator==(const McLabel&) const = default;
};

class McTimeQuery {
 public:
  McTimeQuery(const Timetable& tt, const TdGraph& g);

  /// Pareto search from `source` at absolute time `departure`. Journeys
  /// with more than `max_boards` boardings are cut off (they are almost
  /// never Pareto-optimal in practice and bounding them guarantees
  /// termination on free-transfer cycles).
  void run(StationId source, Time departure, std::uint32_t max_boards = 16);

  /// Pareto front at a station: arrival strictly increasing, boardings
  /// strictly decreasing. Empty if unreachable. The front's first entry is
  /// the earliest arrival (equals TimeQuery), the last the fewest-boarding
  /// alternative.
  std::span<const McLabel> pareto(StationId s) const;

  const QueryStats& stats() const { return stats_; }

 private:
  const Timetable& tt_;
  const TdGraph& g_;
  // Per node: permanent Pareto labels (contiguous storage rebuilt per run).
  std::vector<std::vector<McLabel>> fronts_;
  EpochArray<std::uint32_t> min_boards_;
  QueryStats stats_;
  std::vector<NodeId> touched_;
};

}  // namespace pconn
