#include "algo/lc_profile.hpp"

#include <algorithm>

namespace pconn {

Profile merge_profiles(const Profile& a, const Profile& b, Time period) {
  Profile u;
  u.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(u),
             [](const ProfilePoint& x, const ProfilePoint& y) {
               return x.dep != y.dep ? x.dep < y.dep : x.arr < y.arr;
             });
  return reduce_profile(u, period);
}

LcProfileQuery::LcProfileQuery(const Timetable& tt, const TdGraph& g)
    : tt_(tt), g_(g) {
  heap_.reset_capacity(g.num_nodes());
  labels_.resize(g.num_nodes());
  dirty_.assign(g.num_nodes(), 0);
}

void LcProfileQuery::run(StationId s) {
  stats_ = QueryStats{};
  heap_.clear();
  for (NodeId v : touched_) {
    labels_[v].clear();
    dirty_[v] = 0;
  }
  touched_.clear();
  auto touch = [&](NodeId v) {
    if (!dirty_[v]) {
      dirty_[v] = 1;
      touched_.push_back(v);
    }
  };

  const NodeId src = g_.station_node(s);
  // Initial label: departing S at any outgoing-connection time costs
  // nothing yet — profile points (dep, dep).
  {
    Profile init;
    for (const Connection& c : tt_.outgoing(s)) {
      if (init.empty() || init.back().dep != c.dep) {
        init.push_back({c.dep, c.dep});
      }
    }
    if (init.empty()) return;
    labels_[src] = reduce_profile(init, tt_.period());
    touch(src);
    heap_.push(src, labels_[src].front().arr);
    stats_.pushed++;
  }

  while (!heap_.empty()) {
    auto [v, key] = heap_.pop();
    stats_.settled++;
    stats_.label_points += labels_[v].size();

    for (const TdGraph::Edge& e : g_.out_edges(v)) {
      // Link: run every profile point through the edge. Boarding at the
      // source itself is free (same convention as TimeQuery / SPCS).
      Profile cand;
      cand.reserve(labels_[v].size());
      Time cand_min = kInfTime;
      for (const ProfilePoint& p : labels_[v]) {
        Time t = (v == src && e.ttf == kNoTtf) ? p.arr : g_.arrival_via(e, p.arr);
        if (t == kInfTime) continue;
        cand.push_back({p.dep, t});
        cand_min = std::min(cand_min, t);
      }
      if (cand.empty()) continue;
      stats_.relaxed++;

      Profile merged = labels_[e.head].empty()
                           ? reduce_profile(cand, tt_.period())
                           : merge_profiles(labels_[e.head], cand, tt_.period());
      if (merged == labels_[e.head]) continue;
      labels_[e.head] = std::move(merged);
      touch(e.head);
      if (heap_.contains(e.head)) {
        if (cand_min < heap_.key_of(e.head)) {
          heap_.decrease_key(e.head, cand_min);
          stats_.decreased++;
        }
      } else {
        heap_.push(e.head, cand_min);
        stats_.pushed++;
      }
    }
  }
}

const Profile& LcProfileQuery::profile(StationId t) const {
  return labels_[g_.station_node(t)];
}

}  // namespace pconn
