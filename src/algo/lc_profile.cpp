#include "algo/lc_profile.hpp"

#include <algorithm>

namespace pconn {

Profile merge_profiles(const Profile& a, const Profile& b, Time period) {
  Profile u;
  u.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(u),
             profile_point_less);
  return reduce_profile(u, period);
}

template <typename Queue>
LcProfileQueryT<Queue>::LcProfileQueryT(const Timetable& tt, const TdGraph& g,
                                        QueryWorkspace* ws)
    : tt_(tt),
      g_(g),
      heap_(scratch_alloc(ws)),
      qkey_(scratch_alloc(ws)),
      touched_(ArenaAllocator<NodeId>(scratch_alloc(ws))),
      dirty_(ArenaAllocator<std::uint8_t>(scratch_alloc(ws))),
      init_(ArenaAllocator<ProfilePoint>(scratch_alloc(ws))),
      cand_(ArenaAllocator<ProfilePoint>(scratch_alloc(ws))),
      union_(ArenaAllocator<ProfilePoint>(scratch_alloc(ws))),
      merged_(ArenaAllocator<ProfilePoint>(scratch_alloc(ws))) {
  heap_.reset_capacity(g.num_nodes());
  labels_.resize(g.num_nodes());
  dirty_.assign(g.num_nodes(), 0);
}

template <typename Queue>
void LcProfileQueryT<Queue>::run(StationId s) {
  stats_ = QueryStats{};
  heap_.clear();
  if constexpr (!Queue::kAddressable) {
    qkey_.ensure_and_clear(g_.num_nodes(), kInfTime);
  }
  for (NodeId v : touched_) {
    labels_[v].clear();
    dirty_[v] = 0;
  }
  touched_.clear();
  auto touch = [&](NodeId v) {
    if (!dirty_[v]) {
      dirty_[v] = 1;
      touched_.push_back(v);
    }
  };

  // Queue insertion point shared by both policy flavours. For the lazy
  // flavour, a node's live entry is the one whose key matches qkey_;
  // superseded entries stay in the heap and are dropped at pop.
  auto enqueue = [&](NodeId v, Time key) {
    if constexpr (Queue::kAddressable) {
      switch (heap_.push_or_decrease(v, key)) {
        case QueuePush::kPushed:
          stats_.pushed++;
          break;
        case QueuePush::kDecreased:
          stats_.decreased++;
          break;
        case QueuePush::kUnchanged:
          break;
      }
    } else {
      const bool queued = qkey_.touched(v) && qkey_.get(v) != kInfTime;
      if (!queued || key < qkey_.get(v)) {
        heap_.push(v, key);
        qkey_.set(v, key);
        stats_.pushed++;
      }
    }
  };

  // Pointwise-minimum merge of labels_[v] with cand_ into merged_, all
  // through the pooled scratch (no temporaries, capacities reused).
  auto merge_into_scratch = [&](const Profile& label) {
    union_.clear();
    union_.reserve(label.size() + cand_.size());
    std::merge(label.begin(), label.end(), cand_.begin(), cand_.end(),
               std::back_inserter(union_), profile_point_less);
    reduce_profile_into(union_, tt_.period(), merged_);
  };

  const NodeId src = g_.station_node(s);
  // Initial label: departing S at any outgoing-connection time costs
  // nothing yet — profile points (dep, dep).
  {
    init_.clear();
    for (const Connection& c : tt_.outgoing(s)) {
      if (init_.empty() || init_.back().dep != c.dep) {
        init_.push_back({c.dep, c.dep});
      }
    }
    if (init_.empty()) return;
    reduce_profile_into(init_, tt_.period(), merged_);
    labels_[src].assign(merged_.begin(), merged_.end());
    touch(src);
    enqueue(src, labels_[src].front().arr);
  }

  while (!heap_.empty()) {
    auto [v, key] = heap_.pop();
    if constexpr (!Queue::kAddressable) {
      if (!qkey_.touched(v) || qkey_.get(v) != key) {
        stats_.stale_popped++;
        continue;
      }
      qkey_.set(v, kInfTime);  // claimed: the node is no longer queued
    }
    stats_.settled++;
    stats_.label_points += labels_[v].size();

    // SoA relax over v's edge block; the next edge's TTF points are
    // prefetched while the current edge links the whole label profile.
    const std::uint32_t eb = g_.edge_begin(v);
    const std::uint32_t ee = g_.edge_end(v);
    const NodeId* const heads = g_.heads_data();
    for (std::uint32_t ei = eb; ei < ee; ++ei) {
      if (ei + 1 < ee) g_.prefetch_edge_ttf(ei + 1);
      const NodeId head = heads[ei];
      const std::uint32_t w = g_.edge_word(ei);
      // Link: run every profile point through the edge. Boarding at the
      // source itself is free (same convention as TimeQuery / SPCS). The
      // label profile is the batch dimension here: batch mode runs the
      // whole label through the edge function in one sorted-merge pass;
      // constant words stay in the trivial per-point add either way.
      const Profile& tail = labels_[v];
      cand_.clear();
      cand_.reserve(tail.size());
      Time cand_min = kInfTime;
      const bool free_board = v == src && TdGraph::word_is_const(w);
      if (relax_mode_ != RelaxMode::kInterleaved) {
        // Linking a FIFO function keeps arrivals non-decreasing, so the
        // candidate minimum is simply the first finite arrival — no
        // per-point min on either batch sub-path.
        if (!TdGraph::word_is_const(w)) {
          // A reduced profile's arrivals ascend strictly, so the whole
          // label links through the fused sorted-merge kernel: one
          // division total (against one per point on the interleaved
          // side), the candidate profile built in the same pass.
          g_.ttfs().arrival_tn_sorted_fused(
              TdGraph::word_ttf(w), tail.size(),
              [&](std::size_t k) { return tail[k].arr; },
              [&](std::size_t k, Time t) {
                if (t == kInfTime) return;
                cand_.push_back({tail[k].dep, t});
              });
        } else {
          // Constant link: every arrival shifts by the word's weight (zero
          // for the free source boarding), no point is ever dropped — a
          // count-preserving copy-add the compiler vectorizes.
          const Time shift = free_board ? 0 : TdGraph::word_weight(w);
          cand_.resize(tail.size());
          for (std::size_t k = 0; k < tail.size(); ++k) {
            cand_[k] = {tail[k].dep, tail[k].arr + shift};
          }
        }
        if (!cand_.empty()) cand_min = cand_.front().arr;
      } else {
        for (const ProfilePoint& p : tail) {
          Time t = free_board ? p.arr : g_.arrival_by_word(w, p.arr);
          if (t == kInfTime) continue;
          cand_.push_back({p.dep, t});
          cand_min = std::min(cand_min, t);
        }
      }
      if (cand_.empty()) continue;
      stats_.relaxed++;

      Profile& label = labels_[head];
      if (label.empty()) {
        reduce_profile_into(cand_, tt_.period(), merged_);
      } else {
        merge_into_scratch(label);
      }
      if (merged_.size() == label.size() &&
          std::equal(merged_.begin(), merged_.end(), label.begin())) {
        continue;
      }
      label.assign(merged_.begin(), merged_.end());
      touch(head);
      enqueue(head, cand_min);
    }
  }
}

template <typename Queue>
const Profile& LcProfileQueryT<Queue>::profile(StationId t) const {
  return labels_[g_.station_node(t)];
}

// The shipped heap policies; the bucket policy is monotone-only and cannot
// run a label-correcting search (see the static_assert in the header).
template class LcProfileQueryT<TimeBinaryQueue>;
template class LcProfileQueryT<TimeQuaternaryQueue>;
template class LcProfileQueryT<TimeLazyQueue>;

}  // namespace pconn
