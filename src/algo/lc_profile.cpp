#include "algo/lc_profile.hpp"

#include <algorithm>

namespace pconn {

Profile merge_profiles(const Profile& a, const Profile& b, Time period) {
  Profile u;
  u.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(u),
             [](const ProfilePoint& x, const ProfilePoint& y) {
               return x.dep != y.dep ? x.dep < y.dep : x.arr < y.arr;
             });
  return reduce_profile(u, period);
}

template <typename Queue>
LcProfileQueryT<Queue>::LcProfileQueryT(const Timetable& tt, const TdGraph& g,
                                        QueryWorkspace* ws)
    : tt_(tt),
      g_(g),
      heap_(scratch_alloc(ws)),
      qkey_(scratch_alloc(ws)),
      touched_(ArenaAllocator<NodeId>(scratch_alloc(ws))),
      dirty_(ArenaAllocator<std::uint8_t>(scratch_alloc(ws))) {
  heap_.reset_capacity(g.num_nodes());
  labels_.resize(g.num_nodes());
  dirty_.assign(g.num_nodes(), 0);
}

template <typename Queue>
void LcProfileQueryT<Queue>::run(StationId s) {
  stats_ = QueryStats{};
  heap_.clear();
  if constexpr (!Queue::kAddressable) {
    qkey_.ensure_and_clear(g_.num_nodes(), kInfTime);
  }
  for (NodeId v : touched_) {
    labels_[v].clear();
    dirty_[v] = 0;
  }
  touched_.clear();
  auto touch = [&](NodeId v) {
    if (!dirty_[v]) {
      dirty_[v] = 1;
      touched_.push_back(v);
    }
  };

  // Queue insertion point shared by both policy flavours. For the lazy
  // flavour, a node's live entry is the one whose key matches qkey_;
  // superseded entries stay in the heap and are dropped at pop.
  auto enqueue = [&](NodeId v, Time key) {
    if constexpr (Queue::kAddressable) {
      switch (heap_.push_or_decrease(v, key)) {
        case QueuePush::kPushed:
          stats_.pushed++;
          break;
        case QueuePush::kDecreased:
          stats_.decreased++;
          break;
        case QueuePush::kUnchanged:
          break;
      }
    } else {
      const bool queued = qkey_.touched(v) && qkey_.get(v) != kInfTime;
      if (!queued || key < qkey_.get(v)) {
        heap_.push(v, key);
        qkey_.set(v, key);
        stats_.pushed++;
      }
    }
  };

  const NodeId src = g_.station_node(s);
  // Initial label: departing S at any outgoing-connection time costs
  // nothing yet — profile points (dep, dep).
  {
    Profile init;
    for (const Connection& c : tt_.outgoing(s)) {
      if (init.empty() || init.back().dep != c.dep) {
        init.push_back({c.dep, c.dep});
      }
    }
    if (init.empty()) return;
    labels_[src] = reduce_profile(init, tt_.period());
    touch(src);
    enqueue(src, labels_[src].front().arr);
  }

  while (!heap_.empty()) {
    auto [v, key] = heap_.pop();
    if constexpr (!Queue::kAddressable) {
      if (!qkey_.touched(v) || qkey_.get(v) != key) {
        stats_.stale_popped++;
        continue;
      }
      qkey_.set(v, kInfTime);  // claimed: the node is no longer queued
    }
    stats_.settled++;
    stats_.label_points += labels_[v].size();

    for (const TdGraph::Edge& e : g_.out_edges(v)) {
      // Link: run every profile point through the edge. Boarding at the
      // source itself is free (same convention as TimeQuery / SPCS).
      Profile cand;
      cand.reserve(labels_[v].size());
      Time cand_min = kInfTime;
      for (const ProfilePoint& p : labels_[v]) {
        Time t = (v == src && e.ttf == kNoTtf) ? p.arr : g_.arrival_via(e, p.arr);
        if (t == kInfTime) continue;
        cand.push_back({p.dep, t});
        cand_min = std::min(cand_min, t);
      }
      if (cand.empty()) continue;
      stats_.relaxed++;

      Profile merged = labels_[e.head].empty()
                           ? reduce_profile(cand, tt_.period())
                           : merge_profiles(labels_[e.head], cand, tt_.period());
      if (merged == labels_[e.head]) continue;
      labels_[e.head] = std::move(merged);
      touch(e.head);
      enqueue(e.head, cand_min);
    }
  }
}

template <typename Queue>
const Profile& LcProfileQueryT<Queue>::profile(StationId t) const {
  return labels_[g_.station_node(t)];
}

// The shipped heap policies; the bucket policy is monotone-only and cannot
// run a label-correcting search (see the static_assert in the header).
template class LcProfileQueryT<TimeBinaryQueue>;
template class LcProfileQueryT<TimeQuaternaryQueue>;
template class LcProfileQueryT<TimeLazyQueue>;

}  // namespace pconn
