// SPCS — the Self-Pruning Connection-Setting profile search
// (paper Section 3), the system's core contribution.
//
// One SpcsThreadState runs the sequential algorithm over a contiguous range
// [lo, hi) of conn(S). Running it with the full range reproduces the
// sequential algorithm; the parallel driver (parallel_spcs.hpp) gives each
// thread its own state and partition range, which keeps self-pruning and
// all labels thread-local exactly as in the paper.
//
// Queue items are (node, connection) pairs keyed by *arrival time*; for
// every connection index the search is label-setting ("connection-setting").
// Self-pruning (Theorem 1) discards a popped item (v, i) when a
// later-departing connection j > i already settled v, since j then arrives
// no later while leaving later. The stopping criterion (Theorem 2) and the
// distance-table rules (Theorems 3/4) plug in through a SettleHook.
//
// The priority queue is a compile-time policy (queue_policy.hpp): the
// paper's binary heap, a 4-ary heap, a lazy-deletion heap, or a two-level
// monotone bucket queue. Non-addressable policies push one entry per
// improvement; the settled matrix arr_ already identifies outdated entries
// at pop time (arr_.touched), so stale pops are dropped without any
// per-item bookkeeping. All policies settle the same items with the same
// keys and produce identical profiles (tests/queue_policy_test.cpp proves
// this differentially); only pushed/decreased/stale_popped counts differ.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "algo/counters.hpp"
#include "algo/queue_policy.hpp"
#include "algo/relax_batch.hpp"
#include "algo/workspace.hpp"
#include "graph/td_graph.hpp"
#include "timetable/timetable.hpp"
#include "util/epoch_array.hpp"

namespace pconn {

struct SpcsOptions {
  bool self_pruning = true;
  /// Per-thread stopping criterion; only effective with a target station.
  bool stopping_criterion = true;
  /// Engineering refinement beyond the paper: apply the self-pruning test
  /// already at relax time. If a later connection j > i has settled the
  /// head node w, then (pop keys being monotone within a thread) that
  /// settled arrival is <= any arrival we could push for (w, i) now, so
  /// (w, i) would be self-pruned at its pop anyway — skip the queue
  /// operations entirely. Results are unchanged; Table 1 runs with this
  /// OFF to match the paper's settled-connection accounting.
  bool prune_on_relax = false;
  /// Relax-loop phasing (algo/relax_batch.hpp): batch gathers a settled
  /// node's surviving edges and evaluates them with one vectorized
  /// arrival_n call; interleaved is the per-edge seed behaviour. Results
  /// and accounting are bit-identical either way.
  RelaxMode relax = default_relax_mode();
  /// Batch profitability threshold (RelaxOptions::batch_min_edges).
  std::uint32_t batch_min_edges = default_batch_min_edges();
};

/// Verdict of a SettleHook for a popped-and-settled queue item.
enum class SettleAction {
  kRelax,       // normal processing
  kPruneNode,   // Theorem 3: do not relax this node for this connection
  kFinishConn,  // Theorem 4: optimal arrival at the target is known; stop
                // this connection entirely (the hook records the arrival)
};

/// No-op hook: plain SPCS.
struct NoHook {
  /// Whether on_settle should be invoked at all.
  static constexpr bool kWantsSettle = false;
  /// Whether the engine must maintain "has a transfer-station ancestor"
  /// bits and per-connection counts of queue items without one (needed for
  /// the gamma lower bound of target pruning, Theorem 4).
  static constexpr bool kWantsAncestors = false;
  bool is_transfer(StationId) const { return false; }
  SettleAction on_settle(NodeId, ConnIndex, Time, bool) {
    return SettleAction::kRelax;
  }
};

template <typename Queue = SpcsBinaryQueue>
class SpcsThreadStateT {
 public:
  SpcsThreadStateT() : SpcsThreadStateT(nullptr) {}
  /// Places all scratch (queue, label matrices, epoch arrays) in the
  /// workspace's arena; ws == nullptr keeps the plain-heap behaviour. The
  /// state must not outlive the workspace.
  explicit SpcsThreadStateT(QueryWorkspace* ws)
      : heap_(scratch_alloc(ws)),
        arr_(scratch_alloc(ws)),
        maxconn_(scratch_alloc(ws)),
        anc_(scratch_alloc(ws)),
        best_(scratch_alloc(ws)),
        noanc_(ArenaAllocator<std::uint32_t>(scratch_alloc(ws))),
        done_(ArenaAllocator<std::uint8_t>(scratch_alloc(ws))),
        batch_(scratch_alloc(ws)) {}

  /// Queue keys are composite: (arrival << kKeyShift) | (W - 1 - li).
  /// Arrival-time ties are broken towards the HIGHER connection index —
  /// under the FIFO property a later connection can only arrive *equally*
  /// early, so ties are precisely where self-pruning fires, and popping the
  /// later connection first lets it prune all earlier ones at that node.
  static constexpr unsigned kKeyShift = kSpcsKeyShift;
  /// Arrival label arr(v, i) for the local connection index i in [0, width):
  /// the settled arrival time, or kInfTime when unreached or pruned.
  Time arrival(NodeId v, std::uint32_t local) const {
    return arr_.get(static_cast<std::size_t>(v) * width_ + local);
  }

  std::uint32_t width() const { return width_; }
  const QueryStats& stats() const { return stats_; }

  /// The (node x width) label matrix itself — slot v * width() + li, valid
  /// iff stamped with the current epoch. The rows are already node-major,
  /// which is exactly the surface the overlay driver's batched down-sweep
  /// wants: it extends the matrix in place (algo/overlay_spcs.cpp) and
  /// adds the sweep's per-lane relax accounting through stats_mutable().
  EpochArray<Time>& label_matrix() { return arr_; }
  const EpochArray<Time>& label_matrix() const { return arr_; }
  QueryStats& stats_mutable() { return stats_; }

  /// Runs SPCS for connections [lo, hi) of `conns` (= conn(S), sorted by
  /// departure). If `target` is a valid station, the stopping criterion is
  /// applied (per thread) and relaxing stops at the target's station node.
  template <typename Hook>
  void run(const TdGraph& g, const Timetable& tt,
           std::span<const Connection> conns, std::uint32_t lo,
           std::uint32_t hi, StationId target, const SpcsOptions& opt,
           Hook& hook) {
    run_on(g, g, tt, conns, lo, hi, target, opt, hook);
  }

  /// Graph-generalized body of run(): the settle loop streams `g` (TdGraph
  /// or OverlayGraph — same SoA shape), while `flat` resolves the pieces
  /// only the flat graph knows: a connection's departure route node (the
  /// initial pushes; node ids are shared between the two graphs) and
  /// station_of for ancestor-tracking hooks. The overlay driver
  /// (algo/overlay_spcs.hpp) runs the ascent through this entry point;
  /// run_on(g, g, ...) is the flat engine, byte for byte.
  template <typename GraphT, typename Hook>
  void run_on(const GraphT& g, const TdGraph& flat, const Timetable& tt,
              std::span<const Connection> conns, std::uint32_t lo,
              std::uint32_t hi, StationId target, const SpcsOptions& opt,
              Hook& hook) {
    assert(lo <= hi && hi <= conns.size());
    stats_ = QueryStats{};
    const std::uint32_t W = hi - lo;
    width_ = W;
    const std::size_t slots = static_cast<std::size_t>(g.num_nodes()) * W;
    if (heap_.capacity() < slots) heap_.reset_capacity(slots);
    batch_.reserve(g.max_out_degree());
    arr_.ensure_and_clear(slots, kInfTime);
    if (opt.self_pruning) maxconn_.ensure_and_clear(g.num_nodes(), -1);
    if constexpr (Hook::kWantsAncestors) {
      anc_.ensure_and_clear(slots, 0);
      noanc_.assign(W, 0);
      // Without an addressable queue, ancestor accounting needs to know
      // whether a push improves the item's best queued key; track it here.
      if constexpr (!Queue::kAddressable) {
        best_.ensure_and_clear(slots, kInfKey);
      }
    }
    done_.assign(W, 0);

    const NodeId target_node =
        target == kInvalidStation ? kInvalidNode : g.station_node(target);

    assert(slots <= std::numeric_limits<std::uint32_t>::max());
    assert(W < (1u << kKeyShift));
    const auto make_key = [W](Time arr, std::uint32_t li) {
      return (static_cast<std::uint64_t>(arr) << kKeyShift) | (W - 1 - li);
    };
    for (std::uint32_t li = 0; li < W; ++li) {
      const Connection& c = conns[lo + li];
      NodeId r = flat.departure_node(tt, c);
      heap_.push(static_cast<std::uint32_t>(
                     static_cast<std::uint64_t>(r) * W + li),
                 make_key(c.dep, li));
      stats_.pushed++;
      if constexpr (Hook::kWantsAncestors) noanc_[li]++;
    }

    std::int64_t tm = -1;  // stopping criterion: max conn index settled at T

    while (!heap_.empty()) {
      auto [id, packed] = heap_.pop();
      if constexpr (!Queue::kAddressable) {
        // Lazy deletion: (v, li) settles on its first (minimum-key) pop;
        // later entries for the same id are outdated duplicates.
        if (arr_.touched(id)) {
          stats_.stale_popped++;
          continue;
        }
      }
      const Time key = static_cast<Time>(packed >> kKeyShift);
      const NodeId v = static_cast<NodeId>(id / W);
      const std::uint32_t li = static_cast<std::uint32_t>(id % W);
      stats_.settled++;

      bool had_anc = true;
      if constexpr (Hook::kWantsAncestors) {
        had_anc = anc_.get(id) != 0;
        if (!had_anc) noanc_[li]--;
      }

      arr_.set(id, key);  // marks (v, li) settled

      if (done_[li]) {  // connection finished by target pruning
        stats_.table_pruned++;
        arr_.set(id, kInfTime);
        continue;
      }
      if (target_node != kInvalidNode && opt.stopping_criterion &&
          static_cast<std::int64_t>(li) <= tm) {
        stats_.stop_pruned++;
        arr_.set(id, kInfTime);
        continue;
      }
      if (opt.self_pruning) {
        if (static_cast<std::int32_t>(li) <= maxconn_.get(v)) {
          stats_.self_pruned++;
          arr_.set(id, kInfTime);
          continue;
        }
        maxconn_.set(v, static_cast<std::int32_t>(li));
      }
      if (v == target_node) {
        // arr(T, li) is final; paths through T never improve arrivals at T.
        tm = std::max<std::int64_t>(tm, li);
        if (opt.stopping_criterion && tm + 1 == W) {
          heap_.clear();
          break;
        }
        continue;
      }
      if constexpr (Hook::kWantsSettle) {
        bool gamma_valid = false;
        if constexpr (Hook::kWantsAncestors) gamma_valid = noanc_[li] == 0;
        SettleAction action = hook.on_settle(v, li, key, gamma_valid);
        if (action == SettleAction::kPruneNode) {
          stats_.table_pruned++;
          continue;
        }
        if (action == SettleAction::kFinishConn) {
          done_[li] = 1;
          continue;
        }
      }

      // Relax over the SoA edge block of v: heads stream independently of
      // the packed ttf-or-weight words and the settled/self-pruning tests
      // run on the streamed head before the (expensive) TTF evaluation.
      // Batch mode (the default) phases the loop as gather -> eval ->
      // commit (algo/relax_batch.hpp): the pre-tests only read state that
      // settles mutate (arr_, maxconn_), never state the commits below
      // touch, so running them all before any commit is exact — results
      // and accounting stay bit-identical to the interleaved loop.
      // relax_pruned counts every pruned edge, whether or not its arrival
      // would have been finite (the seed evaluated first); settled/pushed
      // accounting is unchanged.
      const std::uint32_t eb = g.edge_begin(v);
      const std::uint32_t ee = g.edge_end(v);
      const NodeId* const heads = g.heads_data();
      const std::uint32_t* const words = g.words_data();

      // Queue push/decrease + ancestor accounting for one surviving edge
      // with evaluated (finite) arrival t. Both modes invoke this in edge
      // order, so per-policy queue contents evolve identically.
      const auto commit = [&](std::uint32_t wid, Time t) {
        stats_.relaxed++;
        const std::uint64_t new_key = make_key(t, li);
        bool improved = true;
        bool contained = false;
        if constexpr (Queue::kAddressable) {
          switch (heap_.push_or_decrease(wid, new_key)) {
            case QueuePush::kPushed:
              stats_.pushed++;
              break;
            case QueuePush::kDecreased:
              stats_.decreased++;
              contained = true;
              break;
            case QueuePush::kUnchanged:
              improved = false;
              contained = true;
              break;
          }
        } else {
          heap_.push(wid, new_key);
          stats_.pushed++;
          if constexpr (Hook::kWantsAncestors) {
            // Mirror the addressable contained/improved classification so
            // the gamma accounting transitions identically per policy.
            contained = best_.touched(wid);
            improved = !contained || new_key < best_.get(wid);
            if (improved) best_.set(wid, new_key);
          }
        }
        if constexpr (Hook::kWantsAncestors) {
          if (improved) {
            const std::uint8_t new_anc =
                (had_anc || hook.is_transfer(flat.station_of(v))) ? 1 : 0;
            if (!contained) {
              anc_.set(wid, new_anc);
              if (!new_anc) noanc_[li]++;
            } else {
              const std::uint8_t old_anc = anc_.get(wid);
              if (old_anc != new_anc) {
                anc_.set(wid, new_anc);
                if (new_anc) {
                  noanc_[li]--;
                } else {
                  noanc_[li]++;
                }
              }
            }
          }
        }
      };

      // Settled / relax-time self-pruning pre-tests on a streamed head;
      // returns false when the edge is discarded before evaluation.
      const auto survives = [&](NodeId head, std::uint32_t wid) {
        if (arr_.touched(wid)) return false;  // already settled for li
        if (opt.self_pruning && opt.prune_on_relax &&
            static_cast<std::int32_t>(li) <= maxconn_.get(head)) {
          stats_.relax_pruned++;
          return false;
        }
        return true;
      };

      if (opt.relax != RelaxMode::kInterleaved &&
          (opt.relax == RelaxMode::kBatchAlways ||
           g.ttf_out_degree(v) >= opt.batch_min_edges)) {
        batch_.clear();
        for (std::uint32_t ei = eb; ei < ee; ++ei) {
          if (ei + 1 < ee) {
            arr_.prefetch(static_cast<std::size_t>(heads[ei + 1]) * W + li);
          }
          const NodeId head = heads[ei];
          const std::uint32_t wid = static_cast<std::uint32_t>(
              static_cast<std::uint64_t>(head) * W + li);
          if (survives(head, wid)) batch_.push(words[ei], wid);
        }
        Time* const out = batch_.prepare_out();
        g.arrivals_by_words(batch_.words(), batch_.size(), key, out);
        for (std::size_t i = 0; i < batch_.size(); ++i) {
          if (out[i] == kInfTime) continue;
          commit(batch_.aux(i), out[i]);
        }
      } else {
        for (std::uint32_t ei = eb; ei < ee; ++ei) {
          if (ei + 1 < ee) {
            arr_.prefetch(static_cast<std::size_t>(heads[ei + 1]) * W + li);
            g.prefetch_edge_ttf(ei + 1);
          }
          const NodeId head = heads[ei];
          const std::uint32_t wid = static_cast<std::uint32_t>(
              static_cast<std::uint64_t>(head) * W + li);
          if (!survives(head, wid)) continue;
          const Time t = g.arrival_by_word(words[ei], key);
          if (t == kInfTime) continue;
          commit(wid, t);
        }
      }
    }
  }

 private:
  static constexpr std::uint64_t kInfKey =
      std::numeric_limits<std::uint64_t>::max();

  // Queue ids address the (node, local connection) lattice: id = v * W + li.
  // Keys are the composite (arrival, reversed connection index) described
  // at kKeyShift.
  Queue heap_;
  EpochArray<Time> arr_;
  EpochArray<std::int32_t> maxconn_;
  EpochArray<std::uint8_t> anc_;
  EpochArray<std::uint64_t> best_;  // best queued key; non-addressable
                                    // queues with ancestor tracking only
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> noanc_;
  std::vector<std::uint8_t, ArenaAllocator<std::uint8_t>> done_;
  RelaxBatch batch_;  // gather/eval scratch of the batch relax mode
  std::uint32_t width_ = 0;
  QueryStats stats_;
};

/// The default engine runs the paper's configuration: a binary heap.
using SpcsThreadState = SpcsThreadStateT<>;

}  // namespace pconn
