// The pluggable monotone priority-queue policies of the query engines.
//
// Every Dijkstra-style engine (SPCS, the time queries, LC) is a class
// template over a queue policy; this header names the concrete policies,
// gives them stable CLI names (`--queue` in the table benches), and
// provides the runtime-to-compile-time dispatch the benches use. A policy
// must provide:
//   reset_capacity / capacity / size / empty / push / pop / top_key /
//   top_id / clear,
// plus the trait constants
//   kAddressable  — contains/key_of/decrease_key/erase/push_or_decrease
//                   exist and pops are never stale;
//   kMonotone     — pushes below the last popped key are forbidden
//                   (bucket queues; unusable for label-correcting search).
// Non-addressable policies rely on the engines' settled/label arrays to
// recognise and drop stale pops (counted in QueryStats::stale_popped).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <type_traits>

#include "timetable/types.hpp"
#include "util/bucket_queue.hpp"
#include "util/heap.hpp"
#include "util/lazy_heap.hpp"

namespace pconn {

/// SPCS queue keys are composite: (arrival << kSpcsKeyShift) | rev-conn
/// index (see SpcsThreadStateT). The bucket policy buckets on the arrival
/// part only, so tie-breaking stays inside one bucket.
inline constexpr unsigned kSpcsKeyShift = 20;

// --- SPCS policies (64-bit composite keys) -------------------------------
using SpcsBinaryQueue = DAryHeap<std::uint64_t, 2>;      // the paper's queue
using SpcsQuaternaryQueue = DAryHeap<std::uint64_t, 4>;  // cache-width arity
using SpcsLazyQueue = LazyDAryHeap<std::uint64_t, 4>;
using SpcsBucketQueue = BucketQueue<std::uint64_t, kSpcsKeyShift, 12>;

// --- scalar-time policies (TimeQuery / TeTimeQuery / LC) -----------------
using TimeBinaryQueue = DAryHeap<Time, 2>;
using TimeQuaternaryQueue = DAryHeap<Time, 4>;
using TimeLazyQueue = LazyDAryHeap<Time, 4>;
using TimeBucketQueue = BucketQueue<Time, 0, 12>;  // one bucket per second

// --- multi-criteria policies (McTimeQuery) -------------------------------
/// Mc queue keys are composite: (arrival << kMcKeyShift) | boardings. A
/// multi-label search keeps several live entries per node, so only
/// non-addressable policies apply (an addressable heap holds one key per
/// id); the "binary" spot is filled by the lazy heap at arity 2, which is
/// exactly the std::priority_queue the engine used to hard-code.
inline constexpr unsigned kMcKeyShift = 8;
using McBinaryQueue = LazyDAryHeap<std::uint64_t, 2>;
using McQuaternaryQueue = LazyDAryHeap<std::uint64_t, 4>;
using McLazyQueue = LazyDAryHeap<std::uint64_t, 4>;
using McBucketQueue = BucketQueue<std::uint64_t, kMcKeyShift, 12>;

/// Runtime policy selector (bench `--queue` flag, differential tests).
enum class QueueKind { kBinary, kQuaternary, kLazy, kBucket };

inline constexpr QueueKind kAllQueueKinds[] = {
    QueueKind::kBinary, QueueKind::kQuaternary, QueueKind::kLazy,
    QueueKind::kBucket};

inline const char* queue_kind_name(QueueKind k) {
  switch (k) {
    case QueueKind::kBinary: return "binary";
    case QueueKind::kQuaternary: return "quaternary";
    case QueueKind::kLazy: return "lazy";
    case QueueKind::kBucket: return "bucket";
  }
  return "?";
}

inline std::optional<QueueKind> parse_queue_kind(std::string_view s) {
  for (QueueKind k : kAllQueueKinds) {
    if (s == queue_kind_name(k)) return k;
  }
  return std::nullopt;
}

/// Calls `fn(std::type_identity<Policy>{})` with the SPCS policy selected
/// by `k`; returns whatever fn returns (all branches must agree).
template <typename Fn>
decltype(auto) with_spcs_queue(QueueKind k, Fn&& fn) {
  switch (k) {
    case QueueKind::kQuaternary:
      return fn(std::type_identity<SpcsQuaternaryQueue>{});
    case QueueKind::kLazy:
      return fn(std::type_identity<SpcsLazyQueue>{});
    case QueueKind::kBucket:
      return fn(std::type_identity<SpcsBucketQueue>{});
    case QueueKind::kBinary:
    default:
      return fn(std::type_identity<SpcsBinaryQueue>{});
  }
}

/// Scalar-time variant of with_spcs_queue (time/overlay/multi-query
/// engines).
template <typename Fn>
decltype(auto) with_time_queue(QueueKind k, Fn&& fn) {
  switch (k) {
    case QueueKind::kQuaternary:
      return fn(std::type_identity<TimeQuaternaryQueue>{});
    case QueueKind::kLazy:
      return fn(std::type_identity<TimeLazyQueue>{});
    case QueueKind::kBucket:
      return fn(std::type_identity<TimeBucketQueue>{});
    case QueueKind::kBinary:
    default:
      return fn(std::type_identity<TimeBinaryQueue>{});
  }
}

/// Multi-criteria variant of with_spcs_queue: the addressable kinds map to
/// their lazy multi-label counterparts of the same arity (see above).
template <typename Fn>
decltype(auto) with_mc_queue(QueueKind k, Fn&& fn) {
  switch (k) {
    case QueueKind::kQuaternary:
      return fn(std::type_identity<McQuaternaryQueue>{});
    case QueueKind::kLazy:
      return fn(std::type_identity<McLazyQueue>{});
    case QueueKind::kBucket:
      return fn(std::type_identity<McBucketQueue>{});
    case QueueKind::kBinary:
    default:
      return fn(std::type_identity<McBinaryQueue>{});
  }
}

}  // namespace pconn
