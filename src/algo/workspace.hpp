// QueryWorkspace — the reusable per-thread scratch home of a query engine.
//
// A workspace owns one Arena and hands out ScratchAlloc handles; every
// engine constructed over it places its scratch containers (epoch arrays,
// heap slots, bucket windows, hook tables) in that arena. The workspace —
// not the engine — is the unit of reuse: engines are cheap views that a
// QuerySession keeps alive across queries, the workspace survives with
// them, and a warm query allocates nothing because every container has
// already grown to its high-water mark inside the arena.
//
// Threading rule (docs/architecture.md): one workspace per thread, no
// sharing. ParallelSpcsT owns one workspace per pool thread; QuerySession
// owns one for its single-threaded engines.
#pragma once

#include <memory>

#include "util/arena.hpp"

namespace pconn {

class QueryWorkspace {
 public:
  explicit QueryWorkspace(
      std::size_t first_block_bytes = Arena::kDefaultBlockBytes)
      : arena_(std::make_unique<Arena>(first_block_bytes)) {}

  QueryWorkspace(const QueryWorkspace&) = delete;
  QueryWorkspace& operator=(const QueryWorkspace&) = delete;
  QueryWorkspace(QueryWorkspace&&) = default;
  QueryWorkspace& operator=(QueryWorkspace&&) = default;

  Arena& arena() { return *arena_; }
  const Arena& arena() const { return *arena_; }

  /// Allocator handle for an engine's containers; rebinds per element type.
  ScratchAlloc alloc() { return ScratchAlloc(arena_.get()); }

  /// Arena footprint — what this workspace pins in memory.
  std::size_t bytes_reserved() const { return arena_->bytes_reserved(); }
  std::size_t bytes_used() const { return arena_->bytes_used(); }

 private:
  // unique_ptr so a workspace can move while allocators keep a stable
  // Arena* (the engines' containers store those pointers).
  std::unique_ptr<Arena> arena_;
};

/// The allocator engines derive their containers from: bound to `ws`'s
/// arena when given a workspace, unbound (plain heap) otherwise — every
/// engine stays constructible without a session.
inline ScratchAlloc scratch_alloc(QueryWorkspace* ws) {
  return ws ? ws->alloc() : ScratchAlloc();
}

}  // namespace pconn
