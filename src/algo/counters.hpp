// Work counters reported by all query algorithms. The paper's Table 1/2
// "settled connections" column is `settled` summed over all threads; queue
// operation counts back the Section 5.1 observation that LC performs up to
// 4x fewer queue operations than CS yet is slower overall.
#pragma once

#include <cstdint>

namespace pconn {

struct QueryStats {
  std::uint64_t settled = 0;       // items taken from the priority queue
  std::uint64_t pushed = 0;        // queue insertions
  std::uint64_t decreased = 0;     // decrease-key operations
  std::uint64_t stale_popped = 0;  // outdated pops dropped by lazy-deletion
                                   // queue policies (0 for addressable ones)
  std::uint64_t relaxed = 0;       // edge relaxations attempted
  std::uint64_t self_pruned = 0;   // pops discarded by self-pruning
  std::uint64_t relax_pruned = 0;  // pushes skipped by relax-time pruning
  std::uint64_t stop_pruned = 0;   // pops discarded by the stopping criterion
  std::uint64_t table_pruned = 0;  // pops discarded by distance-table pruning
  std::uint64_t label_points = 0;  // LC only: sum of label sizes at pops
  double time_ms = 0.0;

  std::uint64_t queue_ops() const {
    return pushed + decreased + settled + stale_popped;
  }

  QueryStats& operator+=(const QueryStats& o) {
    settled += o.settled;
    pushed += o.pushed;
    decreased += o.decreased;
    stale_popped += o.stale_popped;
    relaxed += o.relaxed;
    self_pruned += o.self_pruned;
    relax_pruned += o.relax_pruned;
    stop_pruned += o.stop_pruned;
    table_pruned += o.table_pruned;
    label_points += o.label_points;
    time_ms += o.time_ms;
    return *this;
  }
};

}  // namespace pconn
