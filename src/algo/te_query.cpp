#include "algo/te_query.hpp"

namespace pconn {

template <typename Queue>
TeTimeQueryT<Queue>::TeTimeQueryT(const TeGraph& g, QueryWorkspace* ws)
    : g_(g),
      heap_(scratch_alloc(ws)),
      dist_(scratch_alloc(ws)),
      best_arrival_(scratch_alloc(ws)),
      batch_(scratch_alloc(ws)) {
  heap_.reset_capacity(g.num_nodes());
  dist_.assign(g.num_nodes(), kInfTime);
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.out_edges(v).size());
  }
  batch_.reserve(max_deg);
  // Station count is not stored in TeGraph; size lazily on first run.
}

template <typename Queue>
void TeTimeQueryT<Queue>::run(StationId source, Time departure,
                              StationId target) {
  stats_ = QueryStats{};
  heap_.clear();
  dist_.clear();
  source_ = source;
  departure_ = departure;

  // Track per-station earliest settled arrival events. Station count is
  // implied by node payloads; size the array once on the first run.
  if (best_arrival_.size() == 0) {
    StationId max_station = source;
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      max_station = std::max(max_station, g_.node(v).station);
    }
    best_arrival_.assign(static_cast<std::size_t>(max_station) + 1, kInfTime);
  }
  best_arrival_.clear();

  auto [entry, wait] = g_.entry_node(source, departure);
  if (entry == kInvalidNode) return;  // no departures at the source at all
  dist_.set(entry, departure + wait);
  heap_.push(entry, departure + wait);
  stats_.pushed++;

  Time target_best = kInfTime;
  while (!heap_.empty()) {
    if (target != kInvalidStation && heap_.top_key() >= target_best) break;
    auto [v, key] = heap_.pop();
    if constexpr (!Queue::kAddressable) {
      // Lazy deletion: an entry is outdated once a shorter distance for its
      // node has been pushed (dist_ only decreases before the node pops).
      if (key > dist_.get(v)) {
        stats_.stale_popped++;
        continue;
      }
    }
    stats_.settled++;
    const TeGraph::Node& node = g_.node(v);
    if (node.kind == TeGraph::NodeKind::kArrival) {
      if (key < best_arrival_.get(node.station)) {
        best_arrival_.set(node.station, key);
        if (node.station == target) target_best = key;
      }
      // Arrival events still relax (stay-seated / off-train edges).
    }
    // The TE edge records are already dense 8-byte (head, weight) pairs;
    // the win here is prefetching the next head's distance slot while the
    // current edge relaxes. Batch mode splits gather (copy the block into
    // SoA arrays, prefetching ahead) from the arithmetic — a plain vector
    // add over the weights — and the in-order commit; TE has no pre-eval
    // test, so the phases are trivially identical to the interleaved loop.
    const std::span<const TeGraph::Edge> edges = g_.out_edges(v);

    const auto commit = [&](NodeId head, Time t) {
      stats_.relaxed++;
      if (t < dist_.get(head)) {
        if constexpr (Queue::kAddressable) {
          if (heap_.push_or_decrease(head, t) == QueuePush::kPushed) {
            stats_.pushed++;
          } else {
            stats_.decreased++;
          }
        } else {
          heap_.push(head, t);
          stats_.pushed++;
        }
        dist_.set(head, t);
      }
    };

    if (relax_.mode != RelaxMode::kInterleaved &&
        (relax_.mode == RelaxMode::kBatchAlways ||
         edges.size() >= relax_.batch_min_edges)) {
      batch_.clear();
      for (std::size_t ei = 0; ei < edges.size(); ++ei) {
        if (ei + 1 < edges.size()) dist_.prefetch(edges[ei + 1].head);
        batch_.push(edges[ei].weight, edges[ei].head);
      }
      Time* const out = batch_.prepare_out();
      const std::uint32_t* const weights = batch_.words();
      for (std::size_t i = 0; i < batch_.size(); ++i) out[i] = key + weights[i];
      for (std::size_t i = 0; i < batch_.size(); ++i) {
        commit(batch_.aux(i), out[i]);
      }
    } else {
      for (std::size_t ei = 0; ei < edges.size(); ++ei) {
        if (ei + 1 < edges.size()) dist_.prefetch(edges[ei + 1].head);
        const TeGraph::Edge& e = edges[ei];
        commit(e.head, key + e.weight);
      }
    }
  }
  heap_.clear();
}

template <typename Queue>
Time TeTimeQueryT<Queue>::arrival_at(StationId s) const {
  if (s == source_) return departure_;
  return s < best_arrival_.size() ? best_arrival_.get(s) : kInfTime;
}

// The four shipped queue policies (queue_policy.hpp).
template class TeTimeQueryT<TimeBinaryQueue>;
template class TeTimeQueryT<TimeQuaternaryQueue>;
template class TeTimeQueryT<TimeLazyQueue>;
template class TeTimeQueryT<TimeBucketQueue>;

}  // namespace pconn
