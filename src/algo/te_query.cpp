#include "algo/te_query.hpp"

namespace pconn {

TeTimeQuery::TeTimeQuery(const TeGraph& g) : g_(g) {
  heap_.reset_capacity(g.num_nodes());
  dist_.assign(g.num_nodes(), kInfTime);
  // Station count is not stored in TeGraph; size lazily on first run.
}

void TeTimeQuery::run(StationId source, Time departure, StationId target) {
  stats_ = QueryStats{};
  heap_.clear();
  dist_.clear();
  source_ = source;
  departure_ = departure;

  // Track per-station earliest settled arrival events. Station count is
  // implied by node payloads; size the array once on the first run.
  if (best_arrival_.size() == 0) {
    StationId max_station = source;
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      max_station = std::max(max_station, g_.node(v).station);
    }
    best_arrival_.assign(static_cast<std::size_t>(max_station) + 1, kInfTime);
  }
  best_arrival_.clear();

  auto [entry, wait] = g_.entry_node(source, departure);
  if (entry == kInvalidNode) return;  // no departures at the source at all
  dist_.set(entry, departure + wait);
  heap_.push(entry, departure + wait);
  stats_.pushed++;

  Time target_best = kInfTime;
  while (!heap_.empty()) {
    if (target != kInvalidStation && heap_.top_key() >= target_best) break;
    auto [v, key] = heap_.pop();
    stats_.settled++;
    const TeGraph::Node& node = g_.node(v);
    if (node.kind == TeGraph::NodeKind::kArrival) {
      if (key < best_arrival_.get(node.station)) {
        best_arrival_.set(node.station, key);
        if (node.station == target) target_best = key;
      }
      // Arrival events still relax (stay-seated / off-train edges).
    }
    for (const TeGraph::Edge& e : g_.out_edges(v)) {
      Time t = key + e.weight;
      stats_.relaxed++;
      if (t < dist_.get(e.head)) {
        if (heap_.contains(e.head)) {
          heap_.decrease_key(e.head, t);
          stats_.decreased++;
        } else {
          heap_.push(e.head, t);
          stats_.pushed++;
        }
        dist_.set(e.head, t);
      }
    }
  }
  heap_.clear();
}

Time TeTimeQuery::arrival_at(StationId s) const {
  if (s == source_) return departure_;
  return s < best_arrival_.size() ? best_arrival_.get(s) : kInfTime;
}

}  // namespace pconn
