#include "algo/parallel_spcs.hpp"

#include "util/timer.hpp"

namespace pconn {

template <typename Queue>
ParallelSpcsT<Queue>::ParallelSpcsT(const Timetable& tt, const TdGraph& g,
                                    ParallelSpcsOptions opt)
    : tt_(tt), g_(g), opt_(opt), pool_(opt.threads), states_(opt.threads) {}

template <typename Queue>
ParallelSpcsT<Queue>::~ParallelSpcsT() = default;

template <typename Queue>
void ParallelSpcsT<Queue>::run_partitioned(StationId s, const RangeFn& fn) {
  auto conns = tt_.outgoing(s);
  boundaries_ =
      partition_connections(conns, opt_.threads, opt_.partition, tt_.period());
  pool_.run([&](std::size_t t) { fn(t, boundaries_[t], boundaries_[t + 1]); });
}

template <typename Queue>
Profile ParallelSpcsT<Queue>::assemble_profile(StationId s, StationId t) const {
  auto conns = tt_.outgoing(s);
  const NodeId tn = g_.station_node(t);
  Profile raw;
  raw.reserve(conns.size());
  for (std::size_t th = 0; th < states_.size(); ++th) {
    const std::uint32_t lo = boundaries_[th], hi = boundaries_[th + 1];
    for (std::uint32_t li = 0; li + lo < hi; ++li) {
      raw.push_back({conns[lo + li].dep, states_[th].arrival(tn, li)});
    }
  }
  return reduce_profile(raw, tt_.period());
}

template <typename Queue>
OneToAllResult ParallelSpcsT<Queue>::one_to_all(StationId s) {
  OneToAllResult res;
  Timer total;
  std::vector<double> thread_ms(opt_.threads, 0.0);

  run_partitioned(s, [&](std::size_t t, std::uint32_t lo, std::uint32_t hi) {
    Timer timer;
    NoHook hook;
    SpcsOptions o{.self_pruning = opt_.self_pruning,
                  .stopping_criterion = false,
                  .prune_on_relax = opt_.prune_on_relax};
    states_[t].run(g_, tt_, tt_.outgoing(s), lo, hi, kInvalidStation, o, hook);
    thread_ms[t] = timer.elapsed_ms();
  });

  // Merge + connection reduction by the master thread (paper Section 3.2).
  res.profiles.resize(tt_.num_stations());
  for (StationId v = 0; v < tt_.num_stations(); ++v) {
    res.profiles[v] = assemble_profile(s, v);
  }

  for (std::size_t t = 0; t < states_.size(); ++t) {
    res.stats += states_[t].stats();
    res.max_thread_ms = std::max(res.max_thread_ms, thread_ms[t]);
    res.min_thread_ms =
        t == 0 ? thread_ms[t] : std::min(res.min_thread_ms, thread_ms[t]);
  }
  res.stats.time_ms = total.elapsed_ms();
  return res;
}

template <typename Queue>
StationQueryResult ParallelSpcsT<Queue>::station_to_station(StationId s,
                                                            StationId t) {
  StationQueryResult res;
  Timer total;

  run_partitioned(s, [&](std::size_t th, std::uint32_t lo, std::uint32_t hi) {
    NoHook hook;
    SpcsOptions o{.self_pruning = opt_.self_pruning,
                  .stopping_criterion = opt_.stopping_criterion,
                  .prune_on_relax = opt_.prune_on_relax};
    states_[th].run(g_, tt_, tt_.outgoing(s), lo, hi, t, o, hook);
  });

  res.profile = assemble_profile(s, t);
  for (const auto& st : states_) res.stats += st.stats();
  res.stats.time_ms = total.elapsed_ms();
  return res;
}

// The four shipped queue policies (queue_policy.hpp). Other policies would
// need their own explicit instantiation here.
template class ParallelSpcsT<SpcsBinaryQueue>;
template class ParallelSpcsT<SpcsQuaternaryQueue>;
template class ParallelSpcsT<SpcsLazyQueue>;
template class ParallelSpcsT<SpcsBucketQueue>;

}  // namespace pconn
