#include "algo/parallel_spcs.hpp"

#include "util/timer.hpp"

namespace pconn {

namespace {

std::vector<std::unique_ptr<QueryWorkspace>> make_workspaces(unsigned n) {
  std::vector<std::unique_ptr<QueryWorkspace>> ws;
  ws.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    ws.push_back(std::make_unique<QueryWorkspace>());
  }
  return ws;
}

template <typename Queue>
std::vector<SpcsThreadStateT<Queue>> make_states(
    std::vector<std::unique_ptr<QueryWorkspace>>& ws, ThreadPool& pool) {
  // Before any state grows scratch into its workspace, pin each workspace's
  // arena to the NUMA node of the pool thread that will run on it (NUMA
  // half of the ROADMAP NUMA/THP item; PCONN_NUMA=0 disables, single-node
  // machines are a no-op). The states below are constructed on the master
  // thread, but mbind routes their blocks' pages to the workers' nodes.
  pool.run([&](std::size_t t) {
    ws[t]->arena().set_numa_node(Arena::current_numa_node());
  });
  std::vector<SpcsThreadStateT<Queue>> states;
  states.reserve(ws.size());
  for (auto& w : ws) states.emplace_back(w.get());
  return states;
}

}  // namespace

template <typename Queue>
ParallelSpcsT<Queue>::ParallelSpcsT(const Timetable& tt, const TdGraph& g,
                                    ParallelSpcsOptions opt)
    : tt_(tt),
      g_(g),
      opt_(opt),
      pool_(opt.threads),
      workspaces_(make_workspaces(opt.threads)),
      states_(make_states<Queue>(workspaces_, pool_)),
      thread_ms_(opt.threads, 0.0) {}

template <typename Queue>
ParallelSpcsT<Queue>::~ParallelSpcsT() = default;

template <typename Queue>
void ParallelSpcsT<Queue>::run_partitioned(StationId s, RangeFn fn) {
  auto conns = tt_.outgoing(s);
  partition_connections_into(conns, opt_.threads, opt_.partition, tt_.period(),
                             boundaries_);
  pool_.run([&](std::size_t t) { fn(t, boundaries_[t], boundaries_[t + 1]); });
}

template <typename Queue>
void ParallelSpcsT<Queue>::collect_raw_profile_at(StationId s, NodeId vn,
                                                  Profile& raw) const {
  auto conns = tt_.outgoing(s);
  raw.clear();
  raw.reserve(conns.size());
  for (std::size_t th = 0; th < states_.size(); ++th) {
    const std::uint32_t lo = boundaries_[th], hi = boundaries_[th + 1];
    for (std::uint32_t li = 0; li + lo < hi; ++li) {
      raw.push_back({conns[lo + li].dep, states_[th].arrival(vn, li)});
    }
  }
}

template <typename Queue>
void ParallelSpcsT<Queue>::assemble_profile_into(StationId s, StationId t,
                                                 Profile& out) {
  collect_raw_profile_at(s, g_.station_node(t), raw_scratch_);
  reduce_profile_into(raw_scratch_, tt_.period(), out);
}

template <typename Queue>
Profile ParallelSpcsT<Queue>::assemble_profile(StationId s, StationId t) const {
  Profile raw;
  collect_raw_profile_at(s, g_.station_node(t), raw);
  return reduce_profile(raw, tt_.period());
}

template <typename Queue>
void ParallelSpcsT<Queue>::node_profile_into(StationId s, NodeId v,
                                             Profile& out) {
  collect_raw_profile_at(s, v, raw_scratch_);
  reduce_profile_into(raw_scratch_, tt_.period(), out);
}

template <typename Queue>
Profile ParallelSpcsT<Queue>::node_profile(StationId s, NodeId v) const {
  Profile raw;
  collect_raw_profile_at(s, v, raw);
  return reduce_profile(raw, tt_.period());
}

template <typename Queue>
std::size_t ParallelSpcsT<Queue>::scratch_bytes_reserved() const {
  std::size_t total = 0;
  for (const auto& w : workspaces_) total += w->bytes_reserved();
  return total;
}

template <typename Queue>
void ParallelSpcsT<Queue>::one_to_all_into(StationId s, OneToAllResult& out) {
  Timer total;
  out.stats = QueryStats{};
  out.max_thread_ms = 0.0;
  out.min_thread_ms = 0.0;

  run_partitioned(s, [&](std::size_t t, std::uint32_t lo, std::uint32_t hi) {
    Timer timer;
    NoHook hook;
    SpcsOptions o{.self_pruning = opt_.self_pruning,
                  .stopping_criterion = false,
                  .prune_on_relax = opt_.prune_on_relax,
                  .relax = opt_.relax,
                  .batch_min_edges = opt_.batch_min_edges};
    states_[t].run(g_, tt_, tt_.outgoing(s), lo, hi, kInvalidStation, o, hook);
    thread_ms_[t] = timer.elapsed_ms();
  });

  // Merge + connection reduction by the master thread (paper Section 3.2).
  // resize keeps each station's Profile object — and its capacity — alive
  // across queries, so a warm session's merge is allocation-free.
  out.profiles.resize(tt_.num_stations());
  for (StationId v = 0; v < tt_.num_stations(); ++v) {
    assemble_profile_into(s, v, out.profiles[v]);
  }

  for (std::size_t t = 0; t < states_.size(); ++t) {
    out.stats += states_[t].stats();
    out.max_thread_ms = std::max(out.max_thread_ms, thread_ms_[t]);
    out.min_thread_ms =
        t == 0 ? thread_ms_[t] : std::min(out.min_thread_ms, thread_ms_[t]);
  }
  out.stats.time_ms = total.elapsed_ms();
}

template <typename Queue>
OneToAllResult ParallelSpcsT<Queue>::one_to_all(StationId s) {
  OneToAllResult res;
  one_to_all_into(s, res);
  return res;
}

template <typename Queue>
void ParallelSpcsT<Queue>::station_to_station_into(StationId s, StationId t,
                                                   StationQueryResult& out) {
  Timer total;
  out.stats = QueryStats{};

  run_partitioned(s, [&](std::size_t th, std::uint32_t lo, std::uint32_t hi) {
    NoHook hook;
    SpcsOptions o{.self_pruning = opt_.self_pruning,
                  .stopping_criterion = opt_.stopping_criterion,
                  .prune_on_relax = opt_.prune_on_relax,
                  .relax = opt_.relax,
                  .batch_min_edges = opt_.batch_min_edges};
    states_[th].run(g_, tt_, tt_.outgoing(s), lo, hi, t, o, hook);
  });

  assemble_profile_into(s, t, out.profile);
  for (const auto& st : states_) out.stats += st.stats();
  out.stats.time_ms = total.elapsed_ms();
}

template <typename Queue>
StationQueryResult ParallelSpcsT<Queue>::station_to_station(StationId s,
                                                            StationId t) {
  StationQueryResult res;
  station_to_station_into(s, t, res);
  return res;
}

// The four shipped queue policies (queue_policy.hpp). Other policies would
// need their own explicit instantiation here.
template class ParallelSpcsT<SpcsBinaryQueue>;
template class ParallelSpcsT<SpcsQuaternaryQueue>;
template class ParallelSpcsT<SpcsLazyQueue>;
template class ParallelSpcsT<SpcsBucketQueue>;

}  // namespace pconn
