// Throughput-mode multi-query engines: K concurrent time queries over one
// graph, relaxed through a shared function-grouped frontier
// (docs/architecture.md "Throughput execution").
//
// A single query's settle rarely offers the AVX2 kernels more than a
// handful of TTF lanes (BENCH_batch.json's micro table: the vector kernels
// only clearly win from ~32 lanes). The paper's workloads, though, are
// streams and matrices of queries — so instead of vectorizing inside one
// search, MultiQueryTimeEngineT advances K searches in lockstep rounds:
//
//   1. pop    — every active lane settles one node exactly as its
//               per-query engine would (same stale-pop protocol, same
//               target stop, same accounting);
//   2. gather — each lane streams its settled node's out-block, runs the
//               per-query `dist <= key` pre-test, and appends surviving
//               (word, pop-key, head) tuples to the SharedFrontier;
//   3. eval   — the frontier answers all K lanes' pending edges with a few
//               wide kernel calls (same-function runs via arrival_tn, the
//               mixed residue via one arrival_ptn — relax_batch.hpp);
//   4. commit — lanes commit their slots back in lane order, each slot in
//               edge order, re-running the dist bound — byte-for-byte the
//               per-query batch commit pass.
//
// Determinism: lanes share only read-only graph state; a lane's dist/
// parent/queue advance exclusively in its own pop and commit steps, and
// the kernels are bit-identical to scalar evaluation. Every lane's
// results AND QueryStats therefore equal a standalone TimeQueryT run of
// the same query, in every RelaxMode and queue policy
// (tests/multi_query_test.cpp proves this differentially).
//
// RelaxMode semantics: kInterleaved runs each lane's full per-query
// interleaved settle inline (the A/B baseline — no batching at all).
// kBatch, the default, settles wide fans through the per-lane
// single-entry-time batch path (one arrivals_by_words call at the lane's
// pop key — byte-identical to the per-query engines' batch relax) and
// narrow fans inline. kBatchAlways routes every settle through the
// cross-lane SharedFrontier rounds above. Measured: on the core search
// the per-lane path wins — a fan at one entry time is cheaper to
// evaluate than the same edges regrouped across lanes with mixed entry
// times — so cross-lane batching earns its keep where entry times are
// unavoidably mixed and the order is queue-less: the overlay engine's
// settle_contracted_batch down-sweep (one arrival_tn call per down-edge
// spanning the whole batch).
//
// All lane state (per-lane epoch arrays, queues) and the frontier are
// workspace-resident: a warm run_batch() of the same shape allocates
// nothing (the session test's operator-new guard covers it).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "algo/counters.hpp"
#include "algo/queue_policy.hpp"
#include "algo/relax_batch.hpp"
#include "algo/workspace.hpp"
#include "graph/overlay_graph.hpp"
#include "graph/td_graph.hpp"
#include "timetable/timetable.hpp"
#include "util/epoch_array.hpp"

namespace pconn {

/// One query of a batch; target kInvalidStation runs one-to-all.
struct BatchQuery {
  StationId source = kInvalidStation;
  Time departure = 0;
  StationId target = kInvalidStation;
};

/// Lanes run in lockstep tiles of this many queries (each tile to
/// completion before the next starts). Round-robining a whole 64-lane
/// batch streams every lane's labels and heap through the cache once per
/// round; a tile keeps the round working set L2-sized while the frontier
/// still sees enough lanes to form same-function runs. The overlay
/// down-sweep is unaffected — it always spans the full batch.
constexpr std::size_t kLaneTile = 16;

/// Flat-graph multi-query engine; definitions in multi_query.cpp
/// instantiate the four shipped queue policies.
template <typename Queue = TimeBinaryQueue>
class MultiQueryTimeEngineT {
 public:
  MultiQueryTimeEngineT(const Timetable& tt, const TdGraph& g,
                        QueryWorkspace* ws = nullptr);

  /// Runs all queries to completion. Results stay valid until the next
  /// run; lane q of the accessors below corresponds to queries[q].
  void run(std::span<const BatchQuery> queries);

  std::size_t num_queries() const { return num_queries_; }
  Time arrival_at(std::size_t q, StationId s) const {
    return lanes_[q]->dist.get(g_.station_node(s));
  }
  Time arrival_at_node(std::size_t q, NodeId v) const {
    return lanes_[q]->dist.get(v);
  }
  NodeId parent(std::size_t q, NodeId v) const {
    return lanes_[q]->parent.get(v);
  }
  const QueryStats& stats(std::size_t q) const { return lanes_[q]->stats; }

  /// Lane-occupancy accounting of the shared eval stage: one record per
  /// kernel call, its width as the size. mean_gather() is the mean eval
  /// lane count bench_multiquery reports and CI gates (>= 32).
  const BatchStats& batch_stats() const { return batch_stats_; }

  void set_relax_mode(RelaxMode m) { relax_.mode = m; }
  RelaxMode relax_mode() const { return relax_.mode; }
  void set_relax_options(RelaxOptions r) { relax_ = r; }
  const RelaxOptions& relax_options() const { return relax_; }

  /// Arrival-only mode: skips the per-improvement parent writes (a second
  /// EpochArray store per label). parent(q, v) is meaningless after a run
  /// with tracking off. Distances, stats, and determinism are unchanged —
  /// the parent array is write-only during a run. The session's
  /// distance_table_batch waves run with tracking off (the matrix API
  /// returns only times); run_batch always re-enables it.
  void set_track_parents(bool on) { track_parents_ = on; }
  bool track_parents() const { return track_parents_; }

  /// Multi-target stop for table workloads: each lane stops as soon as
  /// every station in `targets` is settled (their distances are final at
  /// that point; the tail of the search can only touch other nodes). The
  /// single-target BatchQuery stop generalizes, but only the table API
  /// knows ALL its read-back columns up front — per-query engines can
  /// stop at one target at most. Arrivals at the stop targets (and at
  /// every node settled before the last of them) are unchanged; arrivals
  /// elsewhere are unspecified after an early stop. Cleared by
  /// clear_stop_targets(); a BatchQuery target still stops its lane first
  /// if it settles earlier.
  void set_stop_targets(std::span<const StationId> targets);
  void clear_stop_targets();

 private:
  struct Lane {
    explicit Lane(ScratchAlloc alloc)
        : heap(alloc), dist(alloc), parent(alloc) {}
    Queue heap;
    EpochArray<Time> dist;
    EpochArray<NodeId> parent;
    QueryStats stats;
    NodeId src = kInvalidNode;
    NodeId target_node = kInvalidNode;
    NodeId settled_node = kInvalidNode;  // node settled this round
    Time key = 0;                        // its pop key
    std::uint32_t seg_begin = 0;         // this round's frontier slots
    std::uint32_t seg_end = 0;
    std::uint32_t targets_left = 0;  // stop-set stations not yet settled
    bool done = false;
  };

  void ensure_lanes(std::size_t k);
  /// Runs one lane to completion with the per-query engine's fused
  /// pop/relax loop (kInterleaved and kBatch: lanes share no relax state,
  /// so each is exactly a TimeQueryT run over lane-sharded label state —
  /// outlining the per-settle steps measurably cost ~6-10% on the flat
  /// station-table workload vs the per-query loop). flatten: this TU
  /// instantiates eight engine variants, which exhausts the inliner's
  /// budget right here — without the attribute, TtfPool::eval and the
  /// heap push stay out-of-line calls in the hottest loop (a measured
  /// ~4-5% per-settle tax the per-query engine, compiled alone in its own
  /// TU, does not pay).
  [[gnu::flatten]] void run_lane(Lane& lane);
  /// Pops one settleable node for the lane (per-query protocol); marks the
  /// lane done on heap exhaustion or target settle.
  void pop_step(Lane& lane);
  /// Gather phase of the cross-lane shared-frontier mode (kBatchAlways).
  void gather(Lane& lane);
  /// Commit phase: the per-query batch commit pass over the lane's slots.
  void commit(Lane& lane);

  const Timetable& tt_;
  const TdGraph& g_;
  QueryWorkspace* ws_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // grown to the max K seen
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> active_;
  SharedFrontier frontier_;
  RelaxBatch batch_;  // per-lane wide-fan gather/eval scratch
  RelaxOptions relax_;
  BatchStats batch_stats_;
  std::size_t num_queries_ = 0;
  bool track_parents_ = true;
  // Multi-target stop set: per-node flags (only stop-target nodes set),
  // kept empty outside set_stop_targets()/clear_stop_targets() brackets.
  std::vector<std::uint8_t, ArenaAllocator<std::uint8_t>> stop_flags_;
  std::uint32_t stop_count_ = 0;
};

using MultiQueryTimeEngine = MultiQueryTimeEngineT<>;

/// Overlay-routed variant: the same lockstep rounds over the contraction
/// overlay's core (algo/overlay_query.hpp). Each lane replicates
/// OverlayTimeQueryT exactly — the dedicated board-discounted source loop
/// runs inline (all modes, like the per-query engine), core settles feed
/// the shared frontier. This is where cross-query function grouping pays
/// twice: core fans are wide AND queries converge on the same shortcut
/// TTFs, so same-function arrival_tn runs dominate the eval stage.
template <typename Queue = TimeBinaryQueue>
class MultiQueryOverlayTimeEngineT {
 public:
  MultiQueryOverlayTimeEngineT(const Timetable& tt, const TdGraph& g,
                               const OverlayGraph& ov,
                               QueryWorkspace* ws = nullptr);

  void run(std::span<const BatchQuery> queries);

  /// Extends lane q's full (no-target) run to every contracted node — the
  /// per-query rank-descending down-sweep, per lane. After it,
  /// arrival_at_node(q, v) matches the flat engine at ALL nodes.
  void settle_contracted(std::size_t q);

  /// The cross-lane down-sweep: settle_contracted for EVERY lane at once
  /// (all lanes must be full runs). The sweep order is fixed and
  /// queue-less, so the lanes become the vector dimension: labels are
  /// transposed into node-major rows and every down-edge is answered for
  /// all K lanes with one arrival_tn call (one metadata load per edge,
  /// K entry times) — the widest, steadiest kernel feed in the engine;
  /// call widths land in batch_stats(). Per-lane results and accounting
  /// are byte-identical to K settle_contracted(q) calls: same edge order,
  /// same strict-min tie-breaking, bit-identical kernels. After the
  /// sweep, the accessors below serve labels straight from the node-major
  /// matrix (no scatter back into the lanes' arrays) until the next run.
  void settle_contracted_batch();

  std::size_t num_queries() const { return num_queries_; }
  Time arrival_at(std::size_t q, StationId s) const {
    return arrival_at_node(q, ov_.station_node(s));
  }
  Time arrival_at_node(std::size_t q, NodeId v) const {
    if (swept_) return trans_dist_[std::size_t{v} * kp_ + q];
    return lanes_[q]->dist.get(v);
  }
  NodeId parent(std::size_t q, NodeId v) const {
    if (swept_) {
      const std::uint32_t i = ov_.down_pos(v);
      if (i != OverlayGraph::kNoDownPos) {
        const NodeId p = sweep_parent_[std::size_t{i} * kp_ + q];
        // An unreached contracted node keeps its (untouched) lane value.
        if (p != kInvalidNode) return p;
      }
    }
    return lanes_[q]->parent.get(v);
  }
  std::uint32_t parent_edge(std::size_t q, NodeId v) const {
    return lanes_[q]->parent_edge.get(v);
  }
  const QueryStats& stats(std::size_t q) const { return lanes_[q]->stats; }
  const BatchStats& batch_stats() const { return batch_stats_; }

  void set_relax_mode(RelaxMode m) { relax_.mode = m; }
  RelaxMode relax_mode() const { return relax_.mode; }
  void set_relax_options(RelaxOptions r) { relax_ = r; }
  const RelaxOptions& relax_options() const { return relax_; }

 private:
  struct Lane {
    explicit Lane(ScratchAlloc alloc)
        : heap(alloc), dist(alloc), parent(alloc), parent_edge(alloc) {}
    Queue heap;
    EpochArray<Time> dist;
    EpochArray<NodeId> parent;
    EpochArray<std::uint32_t> parent_edge;
    QueryStats stats;
    StationId source = kInvalidStation;
    NodeId src = kInvalidNode;
    NodeId target_node = kInvalidNode;
    NodeId settled_node = kInvalidNode;
    Time key = 0;
    std::uint32_t seg_begin = 0;
    std::uint32_t seg_end = 0;
    bool done = false;
  };

  void ensure_lanes(std::size_t k);
  Time source_arrival(const Lane& lane, std::uint32_t w, Time t) const;
  void pop_step(Lane& lane);
  void settle_source(Lane& lane);
  void settle_interleaved(Lane& lane);
  /// Wide-fan settle through the per-query batch relax path (see the flat
  /// engine): the kBatch default on the overlay core.
  void settle_batched(Lane& lane);
  /// Gather phase of the cross-lane shared-frontier mode (kBatchAlways).
  void gather(Lane& lane);
  void commit(Lane& lane);
  /// Accounting + label/parent/parent-edge update for one surviving
  /// evaluation (shared by the inline settles and the commit pass).
  void commit_one(Lane& lane, NodeId head, Time t, std::uint32_t ei);

  const Timetable& tt_;
  const TdGraph& g_;
  const OverlayGraph& ov_;
  QueryWorkspace* ws_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> active_;
  SharedFrontier frontier_;
  RelaxBatch batch_;  // per-lane wide-fan gather/eval scratch
  RelaxOptions relax_;
  BatchStats batch_stats_;
  std::size_t num_queries_ = 0;

  // settle_contracted_batch state: node-major transposed labels
  // (lane-padded rows of kp_ = K rounded up to 8), per-edge row buffers,
  // per-contracted-node winning tails, per-lane relax counters, and the
  // is-some-lane's-source node mask for the board-discount fix-up. While
  // swept_ is set (sweep done, no newer run), trans_dist_/sweep_parent_
  // ARE the result surface — the sweep never scatters back into the
  // lanes; the node -> sweep-position map the accessors need is the
  // overlay's own down_pos() view.
  std::vector<Time, ArenaAllocator<Time>> trans_dist_;
  std::vector<Time, ArenaAllocator<Time>> row_ts_, row_out_, row_best_;
  std::vector<NodeId, ArenaAllocator<NodeId>> row_best_tail_;
  std::vector<NodeId, ArenaAllocator<NodeId>> sweep_parent_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> relaxed_cnt_;
  std::vector<std::uint8_t, ArenaAllocator<std::uint8_t>> src_mask_;
  std::size_t kp_ = 0;
  bool swept_ = false;
};

using MultiQueryOverlayTimeEngine = MultiQueryOverlayTimeEngineT<>;

}  // namespace pconn
