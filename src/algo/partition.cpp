#include "algo/partition.hpp"

#include <algorithm>

namespace pconn {

void partition_connections_into(std::span<const Connection> conns, unsigned p,
                                PartitionStrategy strategy, Time period,
                                std::vector<std::uint32_t>& b) {
  const auto n = static_cast<std::uint32_t>(conns.size());
  b.assign(p + 1, n);  // reuses capacity on repeated queries
  b[0] = 0;
  switch (strategy) {
    case PartitionStrategy::kEqualConnections:
      for (unsigned k = 1; k < p; ++k) {
        b[k] = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(n) * k) / p);
      }
      break;
    case PartitionStrategy::kEqualTimeSlots:
      for (unsigned k = 1; k < p; ++k) {
        Time slot_begin = static_cast<Time>(
            (static_cast<std::uint64_t>(period) * k) / p);
        auto it = std::lower_bound(
            conns.begin(), conns.end(), slot_begin,
            [](const Connection& c, Time v) { return c.dep < v; });
        b[k] = static_cast<std::uint32_t>(it - conns.begin());
      }
      break;
    case PartitionStrategy::kKMeans: {
      if (n == 0 || p <= 1) break;
      // Lloyd's algorithm in 1-D over sorted departures: clusters stay
      // contiguous, so boundaries are cut positions. Seed with the
      // equal-count split; iterate to a fixpoint (bounded rounds).
      std::vector<double> cut(p - 1);
      for (unsigned k = 1; k < p; ++k) {
        b[k] = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(n) * k) / p);
      }
      for (int round = 0; round < 32; ++round) {
        // Means per cluster.
        std::vector<double> mean(p, 0.0);
        bool any_empty = false;
        for (unsigned k = 0; k < p; ++k) {
          if (b[k + 1] == b[k]) {
            any_empty = true;
            continue;
          }
          double sum = 0.0;
          for (std::uint32_t i = b[k]; i < b[k + 1]; ++i) sum += conns[i].dep;
          mean[k] = sum / (b[k + 1] - b[k]);
        }
        if (any_empty) break;  // degenerate; keep the previous boundaries
        // New cuts at the midpoints between adjacent means.
        bool changed = false;
        for (unsigned k = 1; k < p; ++k) {
          cut[k - 1] = 0.5 * (mean[k - 1] + mean[k]);
          auto it = std::lower_bound(conns.begin(), conns.end(), cut[k - 1],
                                     [](const Connection& c, double v) {
                                       return static_cast<double>(c.dep) < v;
                                     });
          auto nb = static_cast<std::uint32_t>(it - conns.begin());
          if (nb != b[k]) changed = true;
          b[k] = nb;
        }
        // Keep boundaries monotone (can momentarily cross on tiny inputs).
        for (unsigned k = 1; k <= p; ++k) b[k] = std::max(b[k], b[k - 1]);
        if (!changed) break;
      }
      break;
    }
  }
}

std::vector<std::uint32_t> partition_connections(
    std::span<const Connection> conns, unsigned p, PartitionStrategy strategy,
    Time period) {
  std::vector<std::uint32_t> b;
  partition_connections_into(conns, p, strategy, period, b);
  return b;
}

double partition_imbalance(const std::vector<std::uint32_t>& boundaries) {
  if (boundaries.size() < 2) return 1.0;
  const std::uint32_t n = boundaries.back();
  const std::size_t p = boundaries.size() - 1;
  if (n == 0) return 1.0;
  std::uint32_t max_size = 0;
  for (std::size_t k = 0; k + 1 < boundaries.size(); ++k) {
    max_size = std::max(max_size, boundaries[k + 1] - boundaries[k]);
  }
  return static_cast<double>(max_size) * static_cast<double>(p) /
         static_cast<double>(n);
}

}  // namespace pconn
