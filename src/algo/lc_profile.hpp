// Label-correcting profile search — the classical baseline the paper
// compares against in Table 1 (Section 2, "Computing Distances", after [5]).
//
// Instead of one label per (node, connection), whole travel-time profiles
// are propagated: every node carries a reduced (FIFO) profile; relaxing an
// edge links the tail profile with the edge function and min-merges it into
// the head profile. Nodes whose profile improves are (re)inserted into the
// queue — label-setting is lost, hence "label-correcting".
//
// The paper's Table 1 LC work metric is the sum of the sizes of the labels
// taken from the queue; QueryStats::label_points reports exactly that.
#pragma once

#include <vector>

#include "algo/counters.hpp"
#include "algo/queue_policy.hpp"
#include "algo/relax_batch.hpp"
#include "algo/workspace.hpp"
#include "graph/profile.hpp"
#include "graph/td_graph.hpp"
#include "timetable/timetable.hpp"
#include "util/epoch_array.hpp"

namespace pconn {

/// Pointwise minimum of two reduced profiles, as a reduced profile.
Profile merge_profiles(const Profile& a, const Profile& b, Time period);

/// Template over the scalar-time queue policy. Label-correcting keys are
/// NOT monotone (a relaxed profile point can yield an arrival below the
/// key just popped), so monotone bucket queues are rejected at compile
/// time; heaps — addressable or lazy — are fine. Definitions in
/// lc_profile.cpp instantiate the shipped heap policies.
template <typename Queue = TimeBinaryQueue>
class LcProfileQueryT {
  static_assert(!Queue::kMonotone,
                "label-correcting search pushes keys below the last pop; "
                "monotone queue policies (bucket) cannot run it");

 public:
  /// `ws` (optional) places the queue, the bookkeeping arrays AND the
  /// profile-merge scratch (link/union/reduce buffers) in the workspace's
  /// arena. The per-node labels stay plain heap vectors but are only ever
  /// written through capacity-reusing assign(), so once every buffer has
  /// grown to its high-water mark a warm LC query performs no heap
  /// allocation — the zero-allocation session guard covers LC like every
  /// other engine (tests/session_test.cpp).
  LcProfileQueryT(const Timetable& tt, const TdGraph& g,
                  QueryWorkspace* ws = nullptr);

  /// One-to-all profile search from s. Results valid until the next run.
  void run(StationId s);

  /// Reduced profile dist(S, t, ·) of the last run.
  const Profile& profile(StationId t) const;

  const QueryStats& stats() const { return stats_; }

  /// Relax-loop phasing (algo/relax_batch.hpp). LC's batch dimension is
  /// the label profile itself: linking a TTF edge evaluates every profile
  /// point through one function, which batch mode hands to the vectorized
  /// arrival_tn as a whole. Bit-identical results and accounting.
  void set_relax_mode(RelaxMode m) { relax_mode_ = m; }
  RelaxMode relax_mode() const { return relax_mode_; }

 private:
  using ScratchProfile =
      std::vector<ProfilePoint, ArenaAllocator<ProfilePoint>>;

  const Timetable& tt_;
  const TdGraph& g_;
  Queue heap_;
  EpochArray<Time> qkey_;  // non-addressable only: the node's live queued
                           // key (kInfTime = not queued); older entries in
                           // the heap are stale
  std::vector<Profile> labels_;  // per node; written via assign() only
  // nodes whose label must be cleared
  std::vector<NodeId, ArenaAllocator<NodeId>> touched_;
  // membership flag for touched_
  std::vector<std::uint8_t, ArenaAllocator<std::uint8_t>> dirty_;
  // Arena-pooled merge scratch, reused across relaxes and queries: the
  // linked candidate profile, the merge union, and the reduced result.
  ScratchProfile init_, cand_, union_, merged_;
  RelaxMode relax_mode_ = default_relax_mode();
  QueryStats stats_;
};

using LcProfileQuery = LcProfileQueryT<>;

}  // namespace pconn
