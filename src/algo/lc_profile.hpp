// Label-correcting profile search — the classical baseline the paper
// compares against in Table 1 (Section 2, "Computing Distances", after [5]).
//
// Instead of one label per (node, connection), whole travel-time profiles
// are propagated: every node carries a reduced (FIFO) profile; relaxing an
// edge links the tail profile with the edge function and min-merges it into
// the head profile. Nodes whose profile improves are (re)inserted into the
// queue — label-setting is lost, hence "label-correcting".
//
// The paper's Table 1 LC work metric is the sum of the sizes of the labels
// taken from the queue; QueryStats::label_points reports exactly that.
#pragma once

#include <vector>

#include "algo/counters.hpp"
#include "graph/profile.hpp"
#include "graph/td_graph.hpp"
#include "timetable/timetable.hpp"
#include "util/heap.hpp"

namespace pconn {

/// Pointwise minimum of two reduced profiles, as a reduced profile.
Profile merge_profiles(const Profile& a, const Profile& b, Time period);

class LcProfileQuery {
 public:
  LcProfileQuery(const Timetable& tt, const TdGraph& g);

  /// One-to-all profile search from s. Results valid until the next run.
  void run(StationId s);

  /// Reduced profile dist(S, t, ·) of the last run.
  const Profile& profile(StationId t) const;

  const QueryStats& stats() const { return stats_; }

 private:
  const Timetable& tt_;
  const TdGraph& g_;
  BinaryHeap<Time> heap_;
  std::vector<Profile> labels_;      // per node
  std::vector<NodeId> touched_;      // nodes whose label must be cleared
  std::vector<std::uint8_t> dirty_;  // membership flag for touched_
  QueryStats stats_;
};

}  // namespace pconn
