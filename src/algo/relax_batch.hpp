// Batched gather -> eval -> commit edge relaxation
// (docs/architecture.md "Batch relaxation").
//
// The settle loops used to interleave the (expensive) travel-time-function
// evaluation with the queue push logic, edge by edge. Every engine now
// splits a settle into three phases:
//   1. gather — stream the SoA head/word arrays, run the cheap pre-tests
//      (settled / self-pruning / domination) on the streamed heads, and
//      append the surviving edges' packed words to a batch buffer;
//   2. eval   — evaluate the whole batch with one TtfPool::arrival_n /
//      arrival_tn call (AVX2 gather kernel under runtime dispatch,
//      constant-weight words inline);
//   3. commit — walk the batch *in edge order* and run the queue
//      push/decrease logic against the evaluated arrivals.
// Committing in edge order, and re-running any pre-test whose state the
// commits themselves advance (TimeQuery's dist bound), keeps results AND
// settled/pushed accounting bit-identical to the interleaved loop —
// tests/batch_relax_test.cpp proves this differentially for every engine
// and queue policy.
//
// The interleaved loop survives behind RelaxMode::kInterleaved as the
// measurement baseline (bench_batchrelax) and as an escape hatch
// (PCONN_NO_BATCH_RELAX=1 flips the process-wide default).
//
// RelaxBatch is the workspace-resident buffer of phase 1/2: engines own
// one, placed in their QueryWorkspace's arena, and reserve() it to the
// graph's maximum out-degree at construction so warm queries never touch
// the allocator (the zero-allocation session guard covers batch mode).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "timetable/types.hpp"
#include "util/arena.hpp"

namespace pconn {

class TtfPool;

enum class RelaxMode : std::uint8_t {
  kInterleaved,  // seed behaviour: eval and push logic per edge
  kBatch,        // gather -> batch eval -> commit where profitable
                 // (TTF fan-out >= kBatchRelaxMinEdges; the default)
  kBatchAlways,  // phased loop on every settle, no profitability test —
                 // exercises the batch bodies in the differential tests
                 // and the A/B bench even where fan-outs are tiny
};

/// Fan-out threshold of the batch mode: a settled node whose block holds
/// fewer time-dependent edges (TdGraph::ttf_out_degree; plain out-degree
/// for the all-constant TE graph) runs the interleaved body even under
/// RelaxMode::kBatch. The three-phase structure (buffer writes, a kernel
/// call, a second pass) only pays for itself once TTF evaluations can fill
/// vector lanes: constant words cost a single add either way, and forcing
/// the model's 2-3-edge route nodes through the phases costs ~20%
/// (bench_batchrelax). LC is exempt — its batch dimension is the label
/// profile, profitable at any size. Results are identical on both sides
/// of the threshold by construction. This is the compiled default; the
/// effective per-engine value is RelaxOptions::batch_min_edges, seeded
/// from PCONN_BATCH_MIN_EDGES (default_batch_min_edges below).
inline constexpr std::uint32_t kBatchRelaxMinEdges = 8;

/// Process-wide default: batch, unless PCONN_NO_BATCH_RELAX is set (the
/// A/B escape hatch, mirroring PCONN_NO_AVX2 for the kernels).
inline RelaxMode default_relax_mode() {
  static const RelaxMode mode = std::getenv("PCONN_NO_BATCH_RELAX") != nullptr
                                    ? RelaxMode::kInterleaved
                                    : RelaxMode::kBatch;
  return mode;
}

/// PCONN_BATCH_MIN_EDGES parsing, separated from the env lookup so the
/// tests can exercise it without racing the process-wide cache below.
/// Rejects garbage and negatives (falls back to the compiled default).
inline std::uint32_t parse_batch_min_edges(const char* v) {
  if (v == nullptr) return kBatchRelaxMinEdges;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0) return kBatchRelaxMinEdges;
  return static_cast<std::uint32_t>(parsed);
}

/// Process-wide default of the batch profitability threshold: the compiled
/// kBatchRelaxMinEdges unless PCONN_BATCH_MIN_EDGES overrides it — the
/// per-network tuning knob the crossover table in BENCH_batch.json informs.
/// Parsed once; per-engine overrides go through RelaxOptions.
inline std::uint32_t default_batch_min_edges() {
  static const std::uint32_t v =
      parse_batch_min_edges(std::getenv("PCONN_BATCH_MIN_EDGES"));
  return v;
}

/// Relax-loop configuration of one engine: the phasing mode plus the
/// runtime profitability threshold. Results and accounting are bit-identical
/// for every combination by construction (the threshold only selects which
/// of two equivalent loop bodies runs — tests/batch_relax_test.cpp sweeps
/// it alongside the modes); only throughput changes.
struct RelaxOptions {
  RelaxMode mode = default_relax_mode();
  std::uint32_t batch_min_edges = default_batch_min_edges();
};

inline const char* relax_mode_name(RelaxMode m) {
  switch (m) {
    case RelaxMode::kInterleaved: return "interleaved";
    case RelaxMode::kBatch: return "batch";
    case RelaxMode::kBatchAlways: return "batch-always";
  }
  return "?";
}

/// Batch-engagement accounting of the overlay engines (kept apart from
/// QueryStats so the cross-mode accounting-identity tests stay meaningful:
/// the interleaved mode gathers nothing by definition). `record(n)` is one
/// increment pair plus a bit_width per executed batch; the histogram is
/// log2-bucketed (bucket b holds gathers of size [2^(b-1), 2^b)).
struct BatchStats {
  std::uint64_t gathers = 0;
  std::uint64_t gathered_edges = 0;
  std::array<std::uint64_t, 16> fanout_hist{};

  void record(std::size_t n) {
    ++gathers;
    gathered_edges += n;
    const unsigned b = static_cast<unsigned>(std::bit_width(n));
    ++fanout_hist[b < fanout_hist.size() ? b : fanout_hist.size() - 1];
  }
  /// Mean gather size over executed batches — the "does the AVX2 kernel
  /// actually see wide batches" number bench_overlay reports and CI gates.
  double mean_gather() const {
    return gathers == 0 ? 0.0
                        : static_cast<double>(gathered_edges) /
                              static_cast<double>(gathers);
  }
  void reset() { *this = BatchStats{}; }
};

/// The gather/eval scratch of one engine: parallel arrays of packed
/// ttf-or-weight words, per-edge auxiliary ids (head node, label slot, or
/// whatever the engine commits against), and the evaluated arrivals. All
/// storage is arena-backed when constructed from a workspace allocator.
class RelaxBatch {
 public:
  RelaxBatch() = default;
  explicit RelaxBatch(ScratchAlloc alloc)
      : words_(ArenaAllocator<std::uint32_t>(alloc)),
        aux_(ArenaAllocator<std::uint32_t>(alloc)),
        aux2_(ArenaAllocator<std::uint32_t>(alloc)),
        out_(ArenaAllocator<Time>(alloc)) {}

  /// Grows every array's capacity to at least n (amortized; engines call
  /// this once with the graph's max out-degree).
  void reserve(std::size_t n) {
    if (n <= capacity_) return;
    words_.reserve(n);
    aux_.reserve(n);
    aux2_.reserve(n);
    out_.reserve(n);
    capacity_ = n;
  }
  std::size_t capacity() const { return capacity_; }

  void clear() {
    words_.clear();
    aux_.clear();
    aux2_.clear();
  }
  void push(std::uint32_t word, std::uint32_t aux) {
    words_.push_back(word);
    aux_.push_back(aux);
  }
  /// Two-channel variant (e.g. head + boarding count for the
  /// multi-criteria engine).
  void push2(std::uint32_t word, std::uint32_t aux, std::uint32_t aux2) {
    words_.push_back(word);
    aux_.push_back(aux);
    aux2_.push_back(aux2);
  }
  std::size_t size() const { return words_.size(); }

  const std::uint32_t* words() const { return words_.data(); }
  std::uint32_t aux(std::size_t i) const { return aux_[i]; }
  std::uint32_t aux2(std::size_t i) const { return aux2_[i]; }

  /// Sizes the output array for the current batch and returns it.
  Time* prepare_out() {
    out_.resize(words_.size());
    return out_.data();
  }
  Time out(std::size_t i) const { return out_[i]; }

 private:
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> words_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> aux_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> aux2_;
  std::vector<Time, ArenaAllocator<Time>> out_;
  std::size_t capacity_ = 0;
};

/// The cross-query pending buffer of the throughput engines
/// (algo/multi_query.hpp, docs/architecture.md "Throughput execution").
///
/// One relaxation round appends (word, entry-time, head[, edge]) tuples
/// lane by lane — every active query contributes its settled node's
/// surviving edges at its own pop key — and eval() then answers all of
/// them with as few and as wide kernel calls as the round allows:
///   * constant words are inline adds (no kernel, not lane-occupancy);
///   * TTF slots are bucketed by function id in O(slots) — an epoch-
///     stamped per-function group table, no comparison sort (an early
///     std::sort-per-round draft cost more than the kernels saved);
///     groups of >= kSharedRunMinLanes slots sharing one function become
///     a single arrival_tn call (one metadata load, the entry times as
///     the vector dimension);
///   * the mixed-function residue goes through one wide arrival_ptn call
///     (per-lane word AND per-lane time gathers).
/// Group order is first appearance in slot order and slots stay ascending
/// within a group, so call shapes — and every result slot — are
/// deterministic.
/// Every kernel call's width is record()ed into the engine's BatchStats —
/// that histogram is the "did the cross-query batching actually reach
/// 32-128 lanes" number bench_multiquery reports and CI gates.
///
/// Results are bit-identical to evaluating each slot alone (the kernels
/// are bit-identical to the scalar path by the ttf_test sweeps), so the
/// engines' commit passes see exactly the arrivals a per-query run would.
class SharedFrontier {
 public:
  SharedFrontier() = default;
  explicit SharedFrontier(ScratchAlloc alloc)
      : words_(ArenaAllocator<std::uint32_t>(alloc)),
        heads_(ArenaAllocator<std::uint32_t>(alloc)),
        edges_(ArenaAllocator<std::uint32_t>(alloc)),
        times_(ArenaAllocator<Time>(alloc)),
        out_(ArenaAllocator<Time>(alloc)),
        seen_stamp_(ArenaAllocator<std::uint32_t>(alloc)),
        word_group_(ArenaAllocator<std::uint32_t>(alloc)),
        group_word_(ArenaAllocator<std::uint32_t>(alloc)),
        group_cursor_(ArenaAllocator<std::uint32_t>(alloc)),
        group_offset_(ArenaAllocator<std::uint32_t>(alloc)),
        ttf_slots_(ArenaAllocator<std::uint32_t>(alloc)),
        order_(ArenaAllocator<std::uint32_t>(alloc)),
        run_ts_(ArenaAllocator<Time>(alloc)),
        run_out_(ArenaAllocator<Time>(alloc)),
        grp_words_(ArenaAllocator<std::uint32_t>(alloc)),
        grp_slots_(ArenaAllocator<std::uint32_t>(alloc)),
        grp_ts_(ArenaAllocator<Time>(alloc)),
        grp_out_(ArenaAllocator<Time>(alloc)) {}

  /// Same-function run length from which the grouped arrival_tn call is
  /// preferred over folding the slots into the mixed arrival_ptn residue.
  static constexpr std::size_t kSharedRunMinLanes = 8;

  void clear() {
    words_.clear();
    heads_.clear();
    edges_.clear();
    times_.clear();
  }
  void push(std::uint32_t word, Time t, std::uint32_t head,
            std::uint32_t edge = 0) {
    words_.push_back(word);
    times_.push_back(t);
    heads_.push_back(head);
    edges_.push_back(edge);
  }
  std::size_t size() const { return words_.size(); }
  std::uint32_t head(std::size_t i) const { return heads_[i]; }
  std::uint32_t edge(std::size_t i) const { return edges_[i]; }
  Time out(std::size_t i) const { return out_[i]; }

  /// Evaluates every pending slot against `pool` (out(i) = absolute
  /// arrival via words[i] entered at times[i]); kernel-call widths are
  /// recorded into `stats`. Definition in relax_batch.cpp.
  void eval(const TtfPool& pool, BatchStats& stats);

 private:
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> words_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> heads_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> edges_;
  std::vector<Time, ArenaAllocator<Time>> times_;
  std::vector<Time, ArenaAllocator<Time>> out_;
  // Function-grouping scratch: seen_stamp_/word_group_ are per-function
  // tables (pool-sized, epoch-stamped per eval round so no per-round
  // clear); the rest are compacted per-round group arrays.
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> seen_stamp_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> word_group_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> group_word_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> group_cursor_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> group_offset_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> ttf_slots_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> order_;
  std::uint32_t round_ = 0;
  std::vector<Time, ArenaAllocator<Time>> run_ts_;
  std::vector<Time, ArenaAllocator<Time>> run_out_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> grp_words_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> grp_slots_;
  std::vector<Time, ArenaAllocator<Time>> grp_ts_;
  std::vector<Time, ArenaAllocator<Time>> grp_out_;
};

}  // namespace pconn
