#include "algo/relax_batch.hpp"

#include <algorithm>

#include "graph/ttf_pool.hpp"

namespace pconn {

void SharedFrontier::eval(const TtfPool& pool, BatchStats& stats) {
  const std::size_t n = words_.size();
  out_.resize(n);

  // Per-function group tables, epoch-stamped: a stamp != round_ means the
  // function has not appeared this round. Growing them to the pool size is
  // a one-time cost per session; the wrap re-clear fires once per 2^32
  // rounds.
  if (seen_stamp_.size() < pool.size()) {
    seen_stamp_.resize(pool.size(), 0);
    word_group_.resize(pool.size(), 0);
  }
  if (++round_ == 0) {
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    round_ = 1;
  }

  // Pass 1: constants resolve inline; TTF slots count into per-function
  // groups ordered by first appearance.
  group_word_.clear();
  group_cursor_.clear();  // doubles as the per-group count in this pass
  ttf_slots_.clear();
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::uint32_t w = words_[slot];
    if (w & TtfPool::kConstFlag) {
      out_[slot] = times_[slot] + (w & ~TtfPool::kConstFlag);
      continue;
    }
    if (seen_stamp_[w] != round_) {
      seen_stamp_[w] = round_;
      word_group_[w] = static_cast<std::uint32_t>(group_word_.size());
      group_word_.push_back(w);
      group_cursor_.push_back(0);
    }
    ++group_cursor_[word_group_[w]];
    ttf_slots_.push_back(static_cast<std::uint32_t>(slot));
  }
  const std::size_t groups = group_word_.size();
  if (groups == 0) return;

  // Pass 2: prefix sums, then a stable scatter — slots stay ascending
  // within their group, so every call shape is deterministic.
  group_offset_.resize(groups + 1);
  std::uint32_t acc = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    group_offset_[g] = acc;
    acc += group_cursor_[g];
    group_cursor_[g] = group_offset_[g];
  }
  group_offset_[groups] = acc;
  order_.resize(ttf_slots_.size());
  for (const std::uint32_t slot : ttf_slots_) {
    order_[group_cursor_[word_group_[words_[slot]]]++] = slot;
  }

  // Pass 3: big groups (queries converging on the same edge or shortcut)
  // get one arrival_tn call each — one metadata load, the entry times as
  // the vector dimension; the mixed-function residue folds into one wide
  // arrival_ptn call (per-lane word AND per-lane time gathers).
  grp_words_.clear();
  grp_slots_.clear();
  grp_ts_.clear();
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint32_t f = group_word_[g];
    const std::uint32_t begin = group_offset_[g];
    const std::size_t len = group_offset_[g + 1] - begin;
    if (len >= kSharedRunMinLanes) {
      run_ts_.resize(len);
      for (std::size_t k = 0; k < len; ++k) {
        run_ts_[k] = times_[order_[begin + k]];
      }
      run_out_.resize(len);
      pool.arrival_tn(f, run_ts_.data(), len, run_out_.data());
      stats.record(len);
      for (std::size_t k = 0; k < len; ++k) {
        out_[order_[begin + k]] = run_out_[k];
      }
    } else {
      for (std::size_t k = 0; k < len; ++k) {
        const std::uint32_t slot = order_[begin + k];
        grp_words_.push_back(f);
        grp_ts_.push_back(times_[slot]);
        grp_slots_.push_back(slot);
      }
    }
  }
  if (!grp_words_.empty()) {
    grp_out_.resize(grp_words_.size());
    pool.arrival_ptn(grp_words_.data(), grp_ts_.data(), grp_words_.size(),
                     grp_out_.data());
    stats.record(grp_words_.size());
    for (std::size_t k = 0; k < grp_slots_.size(); ++k) {
      out_[grp_slots_[k]] = grp_out_[k];
    }
  }
}

}  // namespace pconn
