// Partitioning conn(S) over p threads (paper Section 3.2, "Choice of the
// Partition").
#pragma once

#include <span>
#include <vector>

#include "timetable/types.hpp"

namespace pconn {

enum class PartitionStrategy {
  /// Split the day Pi into p equal time intervals; thread k gets the
  /// connections departing in interval k. Simple but unbalanced under rush
  /// hours / night breaks — the paper's negative example.
  kEqualTimeSlots,
  /// Split conn(S) into p ranges of (almost) equal cardinality — the
  /// paper's default compromise.
  kEqualConnections,
  /// 1-D k-means (Lloyd's algorithm) on the departure times, clusters kept
  /// contiguous. The paper reports the improvement over the simple
  /// heuristics as insignificant (Section 3.2); bench_partition verifies.
  kKMeans,
};

/// Returns p+1 monotone boundaries b with b[0] = 0, b[p] = conns.size();
/// thread k owns global connection indices [b[k], b[k+1]). `conns` must be
/// sorted by departure time (which Timetable::outgoing guarantees).
std::vector<std::uint32_t> partition_connections(
    std::span<const Connection> conns, unsigned p, PartitionStrategy strategy,
    Time period);

/// Allocation-free variant for warm query paths: writes the boundaries into
/// `out`, reusing its capacity.
void partition_connections_into(std::span<const Connection> conns, unsigned p,
                                PartitionStrategy strategy, Time period,
                                std::vector<std::uint32_t>& out);

/// max subset size / ideal subset size; 1.0 = perfectly balanced. Used by
/// the partition ablation bench.
double partition_imbalance(const std::vector<std::uint32_t>& boundaries);

}  // namespace pconn
