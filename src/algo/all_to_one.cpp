#include "algo/all_to_one.hpp"

#include <algorithm>

namespace pconn {

AllToOneProfiles::AllToOneProfiles(const Timetable& tt,
                                   ParallelSpcsOptions opt)
    : period_(tt.period()),
      reverse_tt_(make_reverse_timetable(tt)),
      reverse_graph_(TdGraph::build(reverse_tt_)),
      spcs_(reverse_tt_, reverse_graph_, opt) {}

OneToAllResult AllToOneProfiles::all_to_one(StationId target) {
  OneToAllResult reversed = spcs_.one_to_all(target);

  // Map each reversed profile point back to the forward clock. A reversed
  // point (dep_r, arr_r) is an itinerary leaving T at dep_r on the mirrored
  // clock and reaching S at arr_r; forward, that is an itinerary leaving S
  // at mirror(arr_r) and arriving T `travel` seconds later.
  auto mirror = [this](Time t) { return (period_ - t % period_) % period_; };
  OneToAllResult out;
  out.stats = reversed.stats;
  out.max_thread_ms = reversed.max_thread_ms;
  out.min_thread_ms = reversed.min_thread_ms;
  out.profiles.resize(reversed.profiles.size());
  for (StationId s = 0; s < reversed.profiles.size(); ++s) {
    Profile fwd;
    fwd.reserve(reversed.profiles[s].size());
    for (const ProfilePoint& p : reversed.profiles[s]) {
      const Time travel = p.arr - p.dep;
      const Time dep = mirror(p.arr);
      fwd.push_back({dep, dep + travel});
    }
    std::sort(fwd.begin(), fwd.end(),
              [](const ProfilePoint& a, const ProfilePoint& b) {
                return a.dep != b.dep ? a.dep < b.dep : a.arr < b.arr;
              });
    out.profiles[s] = reduce_profile(fwd, period_);
  }
  return out;
}

}  // namespace pconn
