#include "algo/all_to_one.hpp"

#include <algorithm>

namespace pconn {

template <typename Queue>
AllToOneProfilesT<Queue>::AllToOneProfilesT(const Timetable& tt,
                                            ParallelSpcsOptions opt)
    : period_(tt.period()),
      reverse_tt_(make_reverse_timetable(tt)),
      reverse_graph_(TdGraph::build(reverse_tt_)),
      spcs_(reverse_tt_, reverse_graph_, opt) {}

template <typename Queue>
void AllToOneProfilesT<Queue>::all_to_one_into(StationId target,
                                               OneToAllResult& out) {
  OneToAllResult& reversed = reversed_scratch_;
  spcs_.one_to_all_into(target, reversed);

  // Map each reversed profile point back to the forward clock. A reversed
  // point (dep_r, arr_r) is an itinerary leaving T at dep_r on the mirrored
  // clock and reaching S at arr_r; forward, that is an itinerary leaving S
  // at mirror(arr_r) and arriving T `travel` seconds later.
  auto mirror = [this](Time t) { return (period_ - t % period_) % period_; };
  out.stats = reversed.stats;
  out.max_thread_ms = reversed.max_thread_ms;
  out.min_thread_ms = reversed.min_thread_ms;
  out.profiles.resize(reversed.profiles.size());
  for (StationId s = 0; s < reversed.profiles.size(); ++s) {
    Profile& fwd = fwd_scratch_;
    fwd.clear();
    fwd.reserve(reversed.profiles[s].size());
    for (const ProfilePoint& p : reversed.profiles[s]) {
      const Time travel = p.arr - p.dep;
      const Time dep = mirror(p.arr);
      fwd.push_back({dep, dep + travel});
    }
    std::sort(fwd.begin(), fwd.end(),
              [](const ProfilePoint& a, const ProfilePoint& b) {
                return a.dep != b.dep ? a.dep < b.dep : a.arr < b.arr;
              });
    reduce_profile_into(fwd, period_, out.profiles[s]);
  }
}

template <typename Queue>
OneToAllResult AllToOneProfilesT<Queue>::all_to_one(StationId target) {
  OneToAllResult out;
  all_to_one_into(target, out);
  return out;
}

// The four shipped queue policies (queue_policy.hpp).
template class AllToOneProfilesT<SpcsBinaryQueue>;
template class AllToOneProfilesT<SpcsQuaternaryQueue>;
template class AllToOneProfilesT<SpcsLazyQueue>;
template class AllToOneProfilesT<SpcsBucketQueue>;

}  // namespace pconn
