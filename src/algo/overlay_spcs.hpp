// Overlay-routed parallel SPCS: the paper's partitioned connection-setting
// profile search (algo/parallel_spcs.hpp) with the per-thread ascents run
// on the contraction overlay's unified out-CSR (graph/overlay_graph.hpp)
// instead of the flat graph.
//
// Why it is exact. SPCS sources are *route nodes* (one initial push per
// connection at its departure node), and node ids are shared between the
// flat graph and the overlay. From any node — core or contracted — a
// Dijkstra over the unified CSR reaches every CORE node at its exact flat
// distance: a contracted node's stored edges are its out-edges at the
// moment of contraction (heads ranked higher, or core), so the search
// climbs monotonically into the core and then stays there, and witness-
// checked shortcuts preserve all shortest paths into the core. Stations
// are never contracted, so every station label a thread settles — and
// therefore every station profile — is built from exact arrivals. Board
// costs need no source treatment here (unlike the station-sourced overlay
// engines): a shortcut leaving station S folds T(S) into its TTF, which is
// exactly the mid-journey re-boarding cost SPCS pays on the flat graph.
//
// Self-pruning stays thread-local and exact at the *reduced profile*
// level: a pruned (v, i) is always dominated by the same-partition
// connection j > i that pruned it (dep_j >= dep_i, arrival no later), so
// flat and overlay label matrices may differ slot by slot while the
// connection reduction converges to byte-identical profiles — at every
// station, across thread counts, queue policies and RelaxModes
// (tests/overlay_spcs_test.cpp proves this differentially).
//
// Contracted nodes are recovered on demand by settle_contracted(): one
// batched per-partition downward sweep over the overlay's down-CSR. The
// thread's label matrix is already node-major (slot v * W + li), so each
// down-edge feeds ONE pooled arrival_tn call with the whole partition's W
// connection lanes — the multi-query engine's cross-lane sweep
// (multi_query.cpp settle_contracted_batch) generalized from K query
// lanes to a partition's connection fan, writing back in place instead of
// keeping a transposed copy. Unlike the station-sourced engines' sweep,
// the SPCS ascent can settle contracted nodes on its way up (sources are
// contracted), so the sweep folds with min() rather than overwriting.
// After it, node_profile() is exact at EVERY flat node by the same
// domination argument, transitively through the FIFO down TTFs.
#pragma once

#include <memory>
#include <vector>

#include "algo/counters.hpp"
#include "algo/parallel_spcs.hpp"
#include "algo/partition.hpp"
#include "algo/spcs.hpp"
#include "algo/workspace.hpp"
#include "graph/overlay_graph.hpp"
#include "graph/profile.hpp"
#include "graph/td_graph.hpp"
#include "timetable/timetable.hpp"
#include "util/function_ref.hpp"
#include "util/thread_pool.hpp"

namespace pconn {

/// Template over the queue policy of the per-thread SPCS states; shares
/// ParallelSpcsOptions and the result structs with the flat driver so the
/// two engines are drop-in interchangeable. Definitions live in
/// overlay_spcs.cpp (the four shipped policies are instantiated there).
template <typename Queue = SpcsBinaryQueue>
class OverlayParallelSpcsT {
 public:
  /// Needs the flat graph alongside the overlay for the initial pushes
  /// (departure route nodes are a flat-graph notion). Throws on an
  /// overlay contracted from a different dataset.
  OverlayParallelSpcsT(const Timetable& tt, const TdGraph& g,
                       const OverlayGraph& ov, ParallelSpcsOptions opt);
  ~OverlayParallelSpcsT();

  /// One-to-all profile query from S over the core: partitioned ascent +
  /// merge/reduction at every station. Byte-identical to the flat
  /// ParallelSpcsT::one_to_all profiles. Does NOT sweep the contracted
  /// nodes — station profiles never need it; call settle_contracted()
  /// first when node_profile() of contracted nodes is wanted.
  OneToAllResult one_to_all(StationId s);
  /// Allocation-free variant: reuses `out`'s profile buffers.
  void one_to_all_into(StationId s, OneToAllResult& out);

  /// Station-to-station profile query with the per-thread stopping
  /// criterion (targets are stations, hence core — no sweep involved).
  StationQueryResult station_to_station(StationId s, StationId t);
  void station_to_station_into(StationId s, StationId t,
                               StationQueryResult& out);

  /// Extends the last full (no-target) run to every contracted node: each
  /// pool thread runs one batched rank-descending sweep over its own
  /// partition's label rows (header note). Idempotent until the next run.
  /// Under RelaxMode::kInterleaved the sweep evaluates per lane instead of
  /// per row — results and accounting are bit-identical either way.
  void settle_contracted();

  /// Reduced profile dist(S, v, ·) at ANY flat node of the last full run
  /// (the per-connection generalization of the scalar engines'
  /// arrival_at_node). Contracted nodes require settle_contracted().
  Profile node_profile(StationId s, NodeId v);
  void node_profile_into(StationId s, NodeId v, Profile& out);

  const ParallelSpcsOptions& options() const { return opt_; }
  const Timetable& timetable() const { return tt_; }
  const TdGraph& graph() const { return g_; }
  const OverlayGraph& overlay() const { return ov_; }

  /// Same partition-parallel access the flat driver offers.
  using RangeFn =
      FunctionRef<void(std::size_t thread, std::uint32_t lo, std::uint32_t hi)>;
  void run_partitioned(StationId s, RangeFn fn);

  SpcsThreadStateT<Queue>& thread_state(std::size_t i) { return states_[i]; }
  const std::vector<std::uint32_t>& last_boundaries() const {
    return boundaries_;
  }

  /// Station-profile assembly of the last run (shared by one_to_all).
  Profile assemble_profile(StationId s, StationId t);
  void assemble_profile_into(StationId s, StationId t, Profile& out);

  /// Work summed over the per-thread states *right now* — unlike the
  /// snapshot in OneToAllResult::stats this includes a later
  /// settle_contracted()'s relax accounting.
  QueryStats accumulated_stats() const;

  /// Per-phase wall clocks of the last one_to_all (+ sweep): the slowest
  /// thread's ascent, the sweep, and the master-thread merge/reduction.
  double ascent_ms() const { return ascent_ms_; }
  double sweep_ms() const { return sweep_ms_; }
  double merge_ms() const { return merge_ms_; }

  /// Total arena footprint of the per-thread workspaces.
  std::size_t scratch_bytes_reserved() const;

 private:
  /// Arena-backed per-thread sweep rows: raw entry times (kInfTime = dead
  /// lane), the kernel's clamped copy, its outputs, the running strict
  /// minimum, and per-lane relax counters.
  struct SweepScratch {
    explicit SweepScratch(ScratchAlloc alloc)
        : raw(ArenaAllocator<Time>(alloc)),
          ts(ArenaAllocator<Time>(alloc)),
          out(ArenaAllocator<Time>(alloc)),
          best(ArenaAllocator<Time>(alloc)),
          rcnt(ArenaAllocator<std::uint32_t>(alloc)) {}
    std::vector<Time, ArenaAllocator<Time>> raw, ts, out, best;
    std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> rcnt;
  };

  /// The down-sweep of one thread's partition (body of settle_contracted).
  void sweep_partition(std::size_t th);
  /// Raw (unreduced) per-connection arrivals at node `vn`, partition order.
  void collect_raw_profile_at(StationId s, NodeId vn, Profile& raw) const;

  const Timetable& tt_;
  const TdGraph& g_;
  const OverlayGraph& ov_;
  ParallelSpcsOptions opt_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<QueryWorkspace>> workspaces_;
  std::vector<SpcsThreadStateT<Queue>> states_;
  std::vector<std::unique_ptr<SweepScratch>> sweep_;
  std::vector<std::uint32_t> boundaries_;
  std::vector<double> thread_ms_;
  Profile raw_scratch_;
  double ascent_ms_ = 0.0, sweep_ms_ = 0.0, merge_ms_ = 0.0;
  bool full_run_ = false;  // last run had no target (sweep legality)
  bool swept_ = false;     // sweep done for the last run
};

using OverlayParallelSpcs = OverlayParallelSpcsT<>;

}  // namespace pconn
