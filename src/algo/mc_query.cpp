#include "algo/mc_query.hpp"

#include <algorithm>

namespace pconn {

namespace {

/// Lexicographic (arrival, boardings) as one integer key.
std::uint64_t mc_key(Time arr, std::uint32_t boards) {
  return (static_cast<std::uint64_t>(arr) << kMcKeyShift) | boards;
}

}  // namespace

template <typename Queue>
McTimeQueryT<Queue>::McTimeQueryT(const Timetable& tt, const TdGraph& g,
                                  QueryWorkspace* ws)
    : tt_(tt),
      g_(g),
      queue_(scratch_alloc(ws)),
      fronts_(ArenaAllocator<Front>(scratch_alloc(ws))),
      min_boards_(scratch_alloc(ws)),
      touched_(ArenaAllocator<NodeId>(scratch_alloc(ws))) {
  fronts_.resize(g.num_nodes(), Front(ArenaAllocator<McLabel>(scratch_alloc(ws))));
  min_boards_.assign(g.num_nodes(),
                     std::numeric_limits<std::uint32_t>::max());
  queue_.reset_capacity(g.num_nodes());
}

template <typename Queue>
void McTimeQueryT<Queue>::run(StationId source, Time departure,
                              std::uint32_t max_boards) {
  max_boards = std::min(max_boards, (1u << kMcKeyShift) - 1);
  stats_ = QueryStats{};
  for (NodeId v : touched_) fronts_[v].clear();
  touched_.clear();
  min_boards_.clear();
  queue_.clear();

  const NodeId src = g_.station_node(source);
  queue_.push(src, mc_key(departure, 0));
  stats_.pushed++;

  while (!queue_.empty()) {
    auto [node, key] = queue_.pop();
    const Time arr = static_cast<Time>(key >> kMcKeyShift);
    const std::uint32_t boards =
        static_cast<std::uint32_t>(key & ((1u << kMcKeyShift) - 1));
    stats_.settled++;
    // Lexicographic pop order: Pareto-new iff it improves the boarding
    // minimum at the node.
    if (boards >= min_boards_.get(node)) continue;
    min_boards_.set(node, boards);
    if (fronts_[node].empty()) touched_.push_back(node);
    fronts_[node].push_back({arr, boards});

    // SoA relax: the domination test runs on the streamed head before the
    // TTF evaluation; next head's bound + TTF points prefetched one ahead.
    const std::uint32_t eb = g_.edge_begin(node);
    const std::uint32_t ee = g_.edge_end(node);
    const NodeId* const heads = g_.heads_data();
    for (std::uint32_t ei = eb; ei < ee; ++ei) {
      if (ei + 1 < ee) {
        min_boards_.prefetch(heads[ei + 1]);
        g_.prefetch_edge_ttf(ei + 1);
      }
      const NodeId head = heads[ei];
      const std::uint32_t w = g_.edge_word(ei);
      const bool boarding = g_.is_station_node(node) && TdGraph::word_is_const(w);
      std::uint32_t next_boards = boards + (boarding ? 1 : 0);
      if (next_boards > max_boards) continue;
      if (next_boards >= min_boards_.get(head)) continue;  // dominated
      // Boarding at the source itself is free of the transfer time but
      // still counts as boarding a vehicle.
      Time t = (node == src && TdGraph::word_is_const(w))
                   ? arr
                   : g_.arrival_by_word(w, arr);
      if (t == kInfTime) continue;
      stats_.relaxed++;
      queue_.push(head, mc_key(t, next_boards));
      stats_.pushed++;
    }
  }
}

template <typename Queue>
std::span<const McLabel> McTimeQueryT<Queue>::pareto(StationId s) const {
  const auto& f = fronts_[g_.station_node(s)];
  return {f.data(), f.size()};
}

// The shipped multi-label policies (queue_policy.hpp). McLazyQueue is the
// same type as McQuaternaryQueue, so two instantiations cover the three
// heap names.
template class McTimeQueryT<McBinaryQueue>;
template class McTimeQueryT<McQuaternaryQueue>;
template class McTimeQueryT<McBucketQueue>;

}  // namespace pconn
