#include "algo/mc_query.hpp"

#include <queue>

namespace pconn {

namespace {

struct QueueEntry {
  Time arr;
  std::uint32_t boards;
  NodeId node;
  // Lexicographic min-order on (arr, boards).
  bool operator>(const QueueEntry& o) const {
    if (arr != o.arr) return arr > o.arr;
    return boards > o.boards;
  }
};

}  // namespace

McTimeQuery::McTimeQuery(const Timetable& tt, const TdGraph& g)
    : tt_(tt), g_(g) {
  fronts_.resize(g.num_nodes());
  min_boards_.assign(g.num_nodes(),
                     std::numeric_limits<std::uint32_t>::max());
}

void McTimeQuery::run(StationId source, Time departure,
                      std::uint32_t max_boards) {
  stats_ = QueryStats{};
  for (NodeId v : touched_) fronts_[v].clear();
  touched_.clear();
  min_boards_.clear();

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  const NodeId src = g_.station_node(source);
  queue.push({departure, 0, src});
  stats_.pushed++;

  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    stats_.settled++;
    // Lexicographic pop order: Pareto-new iff it improves the boarding
    // minimum at the node.
    if (top.boards >= min_boards_.get(top.node)) continue;
    min_boards_.set(top.node, top.boards);
    if (fronts_[top.node].empty()) touched_.push_back(top.node);
    fronts_[top.node].push_back({top.arr, top.boards});

    for (const TdGraph::Edge& e : g_.out_edges(top.node)) {
      const bool boarding =
          g_.is_station_node(top.node) && e.ttf == kNoTtf;
      std::uint32_t boards = top.boards + (boarding ? 1 : 0);
      if (boards > max_boards) continue;
      // Boarding at the source itself is free of the transfer time but
      // still counts as boarding a vehicle.
      Time t = (top.node == src && e.ttf == kNoTtf)
                   ? top.arr
                   : g_.arrival_via(e, top.arr);
      if (t == kInfTime) continue;
      stats_.relaxed++;
      if (boards >= min_boards_.get(e.head)) continue;  // dominated already
      queue.push({t, boards, e.head});
      stats_.pushed++;
    }
  }
}

std::span<const McLabel> McTimeQuery::pareto(StationId s) const {
  const auto& f = fronts_[g_.station_node(s)];
  return {f.data(), f.size()};
}

}  // namespace pconn
