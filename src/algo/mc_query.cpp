#include "algo/mc_query.hpp"

#include <algorithm>

namespace pconn {

namespace {

/// Lexicographic (arrival, boardings) as one integer key.
std::uint64_t mc_key(Time arr, std::uint32_t boards) {
  return (static_cast<std::uint64_t>(arr) << kMcKeyShift) | boards;
}

}  // namespace

template <typename Queue>
McTimeQueryT<Queue>::McTimeQueryT(const Timetable& tt, const TdGraph& g,
                                  QueryWorkspace* ws)
    : tt_(tt),
      g_(g),
      queue_(scratch_alloc(ws)),
      fronts_(ArenaAllocator<Front>(scratch_alloc(ws))),
      min_boards_(scratch_alloc(ws)),
      batch_(scratch_alloc(ws)),
      touched_(ArenaAllocator<NodeId>(scratch_alloc(ws))) {
  fronts_.resize(g.num_nodes(), Front(ArenaAllocator<McLabel>(scratch_alloc(ws))));
  min_boards_.assign(g.num_nodes(),
                     std::numeric_limits<std::uint32_t>::max());
  queue_.reset_capacity(g.num_nodes());
  batch_.reserve(g.max_out_degree());
}

template <typename Queue>
void McTimeQueryT<Queue>::run(StationId source, Time departure,
                              std::uint32_t max_boards) {
  max_boards = std::min(max_boards, (1u << kMcKeyShift) - 1);
  stats_ = QueryStats{};
  for (NodeId v : touched_) fronts_[v].clear();
  touched_.clear();
  min_boards_.clear();
  queue_.clear();

  const NodeId src = g_.station_node(source);
  queue_.push(src, mc_key(departure, 0));
  stats_.pushed++;

  while (!queue_.empty()) {
    auto [node, key] = queue_.pop();
    const Time arr = static_cast<Time>(key >> kMcKeyShift);
    const std::uint32_t boards =
        static_cast<std::uint32_t>(key & ((1u << kMcKeyShift) - 1));
    stats_.settled++;
    // Lexicographic pop order: Pareto-new iff it improves the boarding
    // minimum at the node.
    if (boards >= min_boards_.get(node)) continue;
    min_boards_.set(node, boards);
    if (fronts_[node].empty()) touched_.push_back(node);
    fronts_[node].push_back({arr, boards});

    // SoA relax: the domination test runs on the streamed head before the
    // TTF evaluation. Batch mode phases the loop as gather -> eval ->
    // commit; the pre-tests read only settle-time state (min_boards_ is
    // written at pops, never during relax), so gathering them all before
    // any commit is exact and both modes push identical labels.
    const std::uint32_t eb = g_.edge_begin(node);
    const std::uint32_t ee = g_.edge_end(node);
    const NodeId* const heads = g_.heads_data();
    const std::uint32_t* const words = g_.words_data();
    const bool from_station = g_.is_station_node(node);

    if (relax_.mode != RelaxMode::kInterleaved &&
        (relax_.mode == RelaxMode::kBatchAlways ||
         g_.ttf_out_degree(node) >= relax_.batch_min_edges)) {
      batch_.clear();
      for (std::uint32_t ei = eb; ei < ee; ++ei) {
        if (ei + 1 < ee) min_boards_.prefetch(heads[ei + 1]);
        const NodeId head = heads[ei];
        std::uint32_t w = words[ei];
        const bool boarding = from_station && TdGraph::word_is_const(w);
        const std::uint32_t next_boards = boards + (boarding ? 1 : 0);
        if (next_boards > max_boards) continue;
        if (next_boards >= min_boards_.get(head)) continue;  // dominated
        // Boarding at the source itself is free of the transfer time but
        // still counts as boarding a vehicle: zero-weight constant word.
        if (node == src && TdGraph::word_is_const(w)) w = TdGraph::kConstFlag;
        batch_.push2(w, head, next_boards);
      }
      Time* const out = batch_.prepare_out();
      g_.arrivals_by_words(batch_.words(), batch_.size(), arr, out);
      for (std::size_t i = 0; i < batch_.size(); ++i) {
        const Time t = out[i];
        if (t == kInfTime) continue;
        stats_.relaxed++;
        queue_.push(batch_.aux(i), mc_key(t, batch_.aux2(i)));
        stats_.pushed++;
      }
    } else {
      for (std::uint32_t ei = eb; ei < ee; ++ei) {
        if (ei + 1 < ee) {
          min_boards_.prefetch(heads[ei + 1]);
          g_.prefetch_edge_ttf(ei + 1);
        }
        const NodeId head = heads[ei];
        const std::uint32_t w = words[ei];
        const bool boarding = from_station && TdGraph::word_is_const(w);
        std::uint32_t next_boards = boards + (boarding ? 1 : 0);
        if (next_boards > max_boards) continue;
        if (next_boards >= min_boards_.get(head)) continue;  // dominated
        // Boarding at the source itself is free of the transfer time but
        // still counts as boarding a vehicle.
        Time t = (node == src && TdGraph::word_is_const(w))
                     ? arr
                     : g_.arrival_by_word(w, arr);
        if (t == kInfTime) continue;
        stats_.relaxed++;
        queue_.push(head, mc_key(t, next_boards));
        stats_.pushed++;
      }
    }
  }
}

template <typename Queue>
std::span<const McLabel> McTimeQueryT<Queue>::pareto(StationId s) const {
  const auto& f = fronts_[g_.station_node(s)];
  return {f.data(), f.size()};
}

// The shipped multi-label policies (queue_policy.hpp). McLazyQueue is the
// same type as McQuaternaryQueue, so two instantiations cover the three
// heap names.
template class McTimeQueryT<McBinaryQueue>;
template class McTimeQueryT<McQuaternaryQueue>;
template class McTimeQueryT<McBucketQueue>;

}  // namespace pconn
