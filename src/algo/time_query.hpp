// Time-query: time-dependent Dijkstra for a fixed departure time
// (paper Section 2, "Computing Distances").
//
// Computes dist(S, ·, tau) — the earliest arrival at every node when
// departing station S at absolute time tau. Boarding at the source itself
// is free (the origin requires no transfer; SPCS encodes the same semantics
// by starting directly on route nodes), so results are directly comparable
// with profile searches evaluated at tau.
//
// Doubles as the correctness oracle of the test suite and as the
// per-connection degenerate case of SPCS (p = |conn(S)|, Section 3.2).
#pragma once

#include <vector>

#include "algo/counters.hpp"
#include "algo/queue_policy.hpp"
#include "algo/relax_batch.hpp"
#include "algo/workspace.hpp"
#include "graph/td_graph.hpp"
#include "timetable/timetable.hpp"
#include "util/epoch_array.hpp"

namespace pconn {

/// Template over the scalar-time queue policy (queue_policy.hpp);
/// definitions in time_query.cpp instantiate the four shipped policies.
template <typename Queue = TimeBinaryQueue>
class TimeQueryT {
 public:
  /// `ws` (optional) places all scratch — dist/parent/settled arrays and
  /// the queue — in the workspace's arena; the engine must not outlive it.
  TimeQueryT(const Timetable& tt, const TdGraph& g,
             QueryWorkspace* ws = nullptr);

  /// One-to-all run. Results stay valid until the next run.
  /// If `target` is given, stops once the target's station node is settled.
  void run(StationId source, Time departure,
           StationId target = kInvalidStation);

  /// Earliest absolute arrival at the station node of s; kInfTime when
  /// unreachable (or not settled before an early target stop).
  Time arrival_at(StationId s) const;
  /// Earliest absolute arrival at an arbitrary graph node.
  Time arrival_at_node(NodeId v) const;

  /// Predecessor node on the shortest path tree (kInvalidNode at the
  /// source / unreached nodes). Used by journey extraction.
  NodeId parent(NodeId v) const;

  const QueryStats& stats() const { return stats_; }

  /// Relax-loop phasing (algo/relax_batch.hpp); results and accounting are
  /// bit-identical in both modes. Defaults to batch (PCONN_NO_BATCH_RELAX
  /// flips the process default); the setter exists for A/B measurement.
  void set_relax_mode(RelaxMode m) { relax_.mode = m; }
  RelaxMode relax_mode() const { return relax_.mode; }
  /// Full relax configuration incl. the batch_min_edges runtime knob.
  void set_relax_options(RelaxOptions r) { relax_ = r; }
  const RelaxOptions& relax_options() const { return relax_; }

 private:
  const Timetable& tt_;
  const TdGraph& g_;
  Queue heap_;
  // No settled array: pop keys are monotone and edge traversal never goes
  // back in time, so an arrival pushed towards an already-settled head can
  // never pass the `t < dist` test — the tentative-distance array alone
  // identifies both stale pops and pointless relaxations (same invariant
  // TeTimeQueryT relies on).
  EpochArray<Time> dist_;
  EpochArray<NodeId> parent_;
  RelaxBatch batch_;  // gather/eval scratch of the batch relax mode
  RelaxOptions relax_;
  QueryStats stats_;
};

using TimeQuery = TimeQueryT<>;

}  // namespace pconn
