#include "algo/contraction.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>
#include <vector>

#include "algo/workspace.hpp"
#include "util/epoch_array.hpp"
#include "util/lazy_heap.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace pconn {

// --- TTF composition primitives ------------------------------------------

Ttf link_edge_ttfs(const TtfPool& pool, std::uint32_t a, std::uint32_t b) {
  const Time period = pool.period();
  const bool ca = TdGraph::word_is_const(a);
  const bool cb = TdGraph::word_is_const(b);
  assert(!(ca && cb) && "const-const paths never need a linked TTF");
  std::vector<TtfPoint> pts;
  if (ca) {
    // Shift form: a connection departing the second leg at D becomes
    // (D - c, dur + c) — show up c early at the tail, pay c on top.
    const Time c = TdGraph::word_weight(a);
    assert(c < period);
    const auto src = pool.points(TdGraph::word_ttf(b));
    pts.reserve(src.size());
    for (const TtfPoint& p : src) {
      pts.push_back({p.dep >= c ? p.dep - c : p.dep + period - c, p.dur + c});
    }
  } else if (cb) {
    const Time c = TdGraph::word_weight(b);
    const auto src = pool.points(TdGraph::word_ttf(a));
    pts.reserve(src.size());
    for (const TtfPoint& p : src) pts.push_back({p.dep, p.dur + c});
  } else {
    const std::uint32_t fa = TdGraph::word_ttf(a);
    const std::uint32_t fb = TdGraph::word_ttf(b);
    const auto src = pool.points(fa);
    if (src.empty() || pool.empty_at(fb)) return Ttf{};
    // A pruned function's arrivals (dep + dur) ascend strictly in point
    // order, so the second leg evaluates through the pool's sorted-merge
    // kernel: one division for the whole composition instead of one per
    // point (the arrival_tn_sorted shape the batch restructure built).
    pts.resize(src.size());
    pool.arrival_tn_sorted_fused(
        fb, src.size(),
        [&](std::size_t k) { return src[k].dep + src[k].dur; },
        [&](std::size_t k, Time arr) {
          pts[k] = {src[k].dep, arr - src[k].dep};
        });
  }
  return Ttf::build(std::move(pts), period);
}

Ttf merge_edge_ttfs(const TtfPool& pool, std::uint32_t a, std::uint32_t b) {
  assert(!TdGraph::word_is_const(a) && !TdGraph::word_is_const(b));
  const auto pa = pool.points(TdGraph::word_ttf(a));
  const auto pb = pool.points(TdGraph::word_ttf(b));
  std::vector<TtfPoint> pts;
  pts.reserve(pa.size() + pb.size());
  pts.insert(pts.end(), pa.begin(), pa.end());
  pts.insert(pts.end(), pb.begin(), pb.end());
  // Each input is "min over its points"; the union with dominated points
  // pruned is exactly the pointwise minimum of the two.
  return Ttf::build(std::move(pts), pool.period());
}

std::pair<Time, Time> word_cost_bounds(const TtfPool& pool, std::uint32_t w,
                                       Time period) {
  if (TdGraph::word_is_const(w)) {
    const Time c = TdGraph::word_weight(w);
    return {c, c};
  }
  const auto pts = pool.points(TdGraph::word_ttf(w));
  if (pts.empty()) return {kInfTime, kInfTime};
  Time mn = kInfTime, mx = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    mn = std::min(mn, pts[i].dur);
    // The supremum of wait + dur on (dep_i, dep_next] is attained one
    // second after dep_i: almost the whole gap, then the next ride.
    const TtfPoint& nxt = pts[(i + 1) % pts.size()];
    const Time gap =
        pts.size() == 1 ? period : delta(pts[i].dep, nxt.dep, period);
    mx = std::max(mx, gap - 1 + nxt.dur);
  }
  return {mn, mx};
}

// --- the contraction driver ----------------------------------------------

namespace {

constexpr std::uint64_t kInfCost = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t kPriorityBias = std::uint64_t{1} << 32;

enum NodeState : std::uint8_t { kLive = 0, kContracted = 1, kFrozen = 2 };

/// One edge of the dynamic working graph (mirrored in out_ and in_).
struct WorkEdge {
  NodeId node;           // the other endpoint
  std::uint32_t word;    // packed const-or-ttf word (overlay pool)
  std::uint32_t origin;  // flat edge id or kShortcutBit | record id
  std::uint32_t hops;    // flat edges this edge spans
  Time min_cost;         // min over t of the edge's travel time
  Time max_cost;         // max over t (kInfTime: empty function)
};

/// A surviving shortcut of one simulated contraction.
struct Candidate {
  NodeId tail, head;
  std::uint32_t origin_a, origin_b;
  std::uint32_t hops;
  Ttf ttf;
};

/// Per-thread scratch of the simulation phase: the witness Dijkstra state
/// lives in an arena-backed workspace pinned to the worker's NUMA node.
struct Worker {
  QueryWorkspace ws;
  EpochArray<std::uint64_t> dist;
  LazyDAryHeap<std::uint64_t, 4> heap;
  std::uint64_t witness_searches = 0;
  std::uint64_t witness_dropped = 0;

  Worker() : dist(ws.alloc()), heap(ws.alloc()) {}
};

}  // namespace

class ContractionBuilder {
 public:
  ContractionBuilder(const Timetable& tt, const TdGraph& g,
                     const OverlayContractionOptions& opt)
      : tt_(tt),
        g_(g),
        opt_(opt),
        pool_(std::max(1u, opt.threads)),
        ttfs_(tt.period(), g.ttfs().index_options()) {}

  OverlayGraph build() {
    Timer timer;
    const NodeId n = g_.num_nodes();
    workers_.reserve(pool_.num_threads());
    for (std::size_t t = 0; t < pool_.num_threads(); ++t) {
      workers_.push_back(std::make_unique<Worker>());
    }
    // NUMA half of the ROADMAP NUMA/THP item: each worker pins its arena
    // to the node it runs on before any scratch grows into it.
    pool_.run([&](std::size_t t) {
      workers_[t]->ws.arena().set_numa_node(Arena::current_numa_node());
    });

    // The overlay pool starts as a verbatim copy of the base pool, so flat
    // edge words keep their numeric value and shortcut TTFs append behind.
    for (std::uint32_t f = 0; f < g_.ttfs().size(); ++f) {
      ttfs_.add_raw(g_.ttfs().points(f));
    }

    init_working_graph();

    order_.reset_capacity(n);
    for (NodeId v = static_cast<NodeId>(tt_.num_stations()); v < n; ++v) {
      order_.push(v, priority(v));
    }

    batch_.reserve(opt_.batch_size);
    cand_lists_.resize(opt_.batch_size);
    capped_.assign(opt_.batch_size, 0);
    while (!order_.empty()) {
      select_batch();
      if (batch_.empty()) break;
      simulate_batch();
      commit_batch();
      ++stats_.rounds;
    }

    for (const auto& wk : workers_) {
      stats_.witness_searches += wk->witness_searches;
      stats_.witness_dropped += wk->witness_dropped;
    }
    OverlayGraph ov = assemble();
    ov.build_stats_.time_ms = timer.elapsed_ms();
    return ov;
  }

 private:
  // --- ordering ---------------------------------------------------------

  /// The lazy-update contraction key: edge difference (shortcuts inserted
  /// minus edges removed, estimated as in*out - in - out) weighted with the
  /// node's shortcut depth (level). Recomputed at pop; see select_batch.
  std::uint64_t priority(NodeId v) const {
    const auto in = static_cast<std::int64_t>(in_[v].size());
    const auto out = static_cast<std::int64_t>(out_[v].size());
    const std::int64_t key = (in * out - in - out) * 8 +
                             static_cast<std::int64_t>(level_[v]) * 2;
    return static_cast<std::uint64_t>(key + kPriorityBias);
  }

  void select_batch() {
    ++round_;
    batch_.clear();
    deferred_.clear();
    while (!order_.empty() && batch_.size() < opt_.batch_size) {
      const auto [v, key] = order_.pop();
      if (state_[v] != kLive) continue;        // contracted/frozen: stale
      if (picked_round_[v] == round_) continue;  // duplicate of a selection
      const std::uint64_t fresh = priority(v);
      if (!order_.empty() && fresh > order_.top_key()) {
        order_.push(v, fresh);  // lazy update: no longer the minimum
        continue;
      }
      if (blocked_round_[v] == round_) {
        // Adjacent to a node already selected this round: contracting both
        // at once would race on shared edges. Back into the queue after
        // selection ends.
        deferred_.push_back({v, fresh});
        continue;
      }
      picked_round_[v] = round_;
      batch_.push_back(v);
      for (const WorkEdge& e : out_[v]) blocked_round_[e.node] = round_;
      for (const WorkEdge& e : in_[v]) blocked_round_[e.node] = round_;
    }
    for (const auto& [v, key] : deferred_) order_.push(v, key);
  }

  // --- simulation (parallel, read-only on the working graph) ------------

  void simulate_batch() {
    pool_.run([&](std::size_t t) {
      Worker& wk = *workers_[t];
      for (std::size_t i = t; i < batch_.size(); i += pool_.num_threads()) {
        if (opt_.faults) {
          opt_.faults->check(FaultInjector::Site::kContractionWorker);
        }
        capped_[i] = simulate_node(batch_[i], wk, cand_lists_[i]) ? 0 : 1;
      }
    });
  }

  /// Upper-bound Dijkstra from u avoiding v: settle-capped, pruned at
  /// `bound` (beyond it no candidate of this tail can be witnessed).
  void witness_search(Worker& wk, NodeId u, NodeId v, std::uint64_t bound) {
    ++wk.witness_searches;
    wk.dist.ensure_and_clear(g_.num_nodes(), kInfCost);
    wk.heap.reset_capacity(g_.num_nodes());
    wk.dist.set(u, 0);
    wk.heap.push(u, 0);
    std::uint32_t settles = 0;
    while (!wk.heap.empty() && settles < opt_.witness_settles) {
      const auto [x, key] = wk.heap.pop();
      if (key > wk.dist.get(x)) continue;  // stale lazy entry
      if (key > bound) break;
      ++settles;
      for (const WorkEdge& e : out_[x]) {
        if (e.node == v || e.max_cost == kInfTime) continue;
        const std::uint64_t nd = key + e.max_cost;
        if (nd < wk.dist.get(e.node)) {
          wk.dist.set(e.node, nd);
          wk.heap.push(e.node, nd);
        }
      }
    }
  }

  /// Builds v's surviving shortcuts into `cands`. Returns false when a cap
  /// fires — the node then freezes into the core instead of contracting.
  bool simulate_node(NodeId v, Worker& wk, std::vector<Candidate>& cands) {
    cands.clear();
    // Best conceivable shortcut lower bound of any pair through v — the
    // witness searches' pruning horizon.
    Time max_out_min = 0;
    for (const WorkEdge& b : out_[v]) {
      if (b.min_cost != kInfTime) max_out_min = std::max(max_out_min, b.min_cost);
    }
    // One search per run of same-tail in-edges: parallel edges (a flat
    // edge plus a merged shortcut on the same pair) share the settle-
    // capped Dijkstra — the dominant preprocessing cost. The worker's
    // dist array holds ONE tail's distances at a time (every search
    // clears it), so reuse is keyed on the tail it currently holds; a
    // tail recurring after a different one simply searches again. The
    // pruning horizon covers the tail's loosest in-edge, so the shared
    // dist is valid for every parallel edge's (larger or equal) test.
    NodeId dist_tail = kInvalidNode;  // whose distances wk.dist holds
    for (std::size_t ai = 0; ai < in_[v].size(); ++ai) {
      const WorkEdge& a = in_[v][ai];
      if (a.min_cost == kInfTime) continue;
      const NodeId u = a.node;
      const bool witnessed = opt_.witness_settles > 0;
      if (witnessed && dist_tail != u) {
        Time tail_min_max = a.min_cost;
        for (const WorkEdge& a2 : in_[v]) {
          if (a2.node == u && a2.min_cost != kInfTime) {
            tail_min_max = std::max(tail_min_max, a2.min_cost);
          }
        }
        witness_search(
            wk, u, v, static_cast<std::uint64_t>(tail_min_max) + max_out_min);
        dist_tail = u;
      }
      for (const WorkEdge& b : out_[v]) {
        const NodeId w = b.node;
        if (w == u || b.min_cost == kInfTime) continue;
        const Time lb = a.min_cost + b.min_cost;
        if (witnessed && wk.dist.get(w) <= lb) {
          // A time-independent path at most this long exists without v:
          // the shortcut can never win at any departure time.
          ++wk.witness_dropped;
          continue;
        }
        const std::uint32_t hops = a.hops + b.hops;
        if (hops > opt_.max_hops) return false;
        if (cands.size() >= opt_.max_new_edges) return false;
        Ttf f = link_edge_ttfs(ttfs_, a.word, b.word);
        if (f.empty()) continue;
        cands.push_back({u, w, a.origin, b.origin, hops, std::move(f)});
      }
    }
    // Edge-difference freeze: contracting must not grow the core graph
    // beyond the dial — a node whose witnessed shortcut set still exceeds
    // the edges it removes by more than max_edge_diff stays in the core.
    const std::int64_t removed =
        static_cast<std::int64_t>(in_[v].size() + out_[v].size());
    if (static_cast<std::int64_t>(cands.size()) - removed >
        static_cast<std::int64_t>(opt_.max_edge_diff)) {
      return false;
    }
    return true;
  }

  // --- commit (serial) --------------------------------------------------

  void commit_batch() {
    for (std::size_t i = 0; i < batch_.size(); ++i) {
      const NodeId v = batch_[i];
      if (capped_[i]) {
        state_[v] = kFrozen;
        ++stats_.frozen;
        continue;
      }
      contract_node(v, cand_lists_[i]);
    }
  }

  void contract_node(NodeId v, std::vector<Candidate>& cands) {
    // Adjacency snapshots at contraction time: out-edges become the node's
    // upward CSR block, in-edges feed the downward sweep.
    up_snap_[v] = std::move(out_[v]);
    down_snap_[v] = std::move(in_[v]);
    out_[v].clear();
    in_[v].clear();
    for (const WorkEdge& a : down_snap_[v]) {
      std::erase_if(out_[a.node],
                    [&](const WorkEdge& e) { return e.node == v; });
    }
    for (const WorkEdge& b : up_snap_[v]) {
      std::erase_if(in_[b.node],
                    [&](const WorkEdge& e) { return e.node == v; });
    }

    for (Candidate& c : cands) {
      const std::uint32_t word_link = ttfs_.add_raw(c.ttf.points());
      shortcuts_.push_back({word_link, v, c.origin_a, c.origin_b});
      const std::uint32_t origin_link =
          OverlayGraph::kShortcutBit |
          static_cast<std::uint32_t>(shortcuts_.size() - 1);
      const auto [mn, mx] = word_cost_bounds(ttfs_, word_link, tt_.period());

      WorkEdge* existing = nullptr;
      for (WorkEdge& e : out_[c.tail]) {
        if (e.node == c.head && OverlayGraph::origin_is_shortcut(e.origin)) {
          existing = &e;
          break;
        }
      }
      if (existing != nullptr) {
        // Parallel shortcut on the same pair: fold into one edge whose TTF
        // is the pointwise minimum. The merge record keeps both branches so
        // journey replay can still tell which one is ridden at a given time.
        const std::uint32_t old_origin = existing->origin;
        const Ttf merged = merge_edge_ttfs(ttfs_, existing->word, word_link);
        const std::uint32_t word_merged = ttfs_.add_raw(merged.points());
        shortcuts_.push_back(
            {word_merged, kInvalidNode, old_origin, origin_link});
        const std::uint32_t origin_merged =
            OverlayGraph::kShortcutBit |
            static_cast<std::uint32_t>(shortcuts_.size() - 1);
        const auto [mmn, mmx] =
            word_cost_bounds(ttfs_, word_merged, tt_.period());
        existing->word = word_merged;
        existing->origin = origin_merged;
        existing->hops = std::max(existing->hops, c.hops);
        existing->min_cost = mmn;
        existing->max_cost = mmx;
        for (WorkEdge& e : in_[c.head]) {
          if (e.node == c.tail && e.origin == old_origin) {
            e = *existing;
            e.node = c.tail;
            break;
          }
        }
        ++stats_.merges;
      } else {
        out_[c.tail].push_back({c.head, word_link, origin_link, c.hops, mn, mx});
        in_[c.head].push_back({c.tail, word_link, origin_link, c.hops, mn, mx});
      }
    }

    state_[v] = kContracted;
    rank_[v] = static_cast<std::uint32_t>(contracted_order_.size());
    contracted_order_.push_back(v);
    ++stats_.contracted;

    // Neighbors got new edges and a deeper level: requeue with fresh keys
    // (duplicates are fine — the lazy queue drops stale entries at pop).
    ++round_;  // reuse the round stamps to dedup the neighbor set
    auto requeue = [&](NodeId nb) {
      if (picked_round_[nb] == round_) return;
      picked_round_[nb] = round_;
      level_[nb] = std::max(level_[nb], level_[v] + 1);
      if (state_[nb] == kLive && !g_.is_station_node(nb)) {
        order_.push(nb, priority(nb));
      }
    };
    for (const WorkEdge& e : up_snap_[v]) requeue(e.node);
    for (const WorkEdge& e : down_snap_[v]) requeue(e.node);
  }

  // --- setup / teardown -------------------------------------------------

  void init_working_graph() {
    const NodeId n = g_.num_nodes();
    out_.resize(n);
    in_.resize(n);
    up_snap_.resize(n);
    down_snap_.resize(n);
    level_.assign(n, 0);
    state_.assign(n, kLive);
    rank_.assign(n, kCoreRank);
    picked_round_.assign(n, 0);
    blocked_round_.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      for (TdGraph::EdgeId e = g_.edge_begin(v); e < g_.edge_end(v); ++e) {
        const std::uint32_t w = g_.edge_word(e);
        const auto [mn, mx] = word_cost_bounds(ttfs_, w, tt_.period());
        const NodeId head = g_.edge_head(e);
        out_[v].push_back({head, w, e, 1, mn, mx});
        in_[head].push_back({v, w, e, 1, mn, mx});
      }
    }
  }

  OverlayGraph assemble() {
    const NodeId n = g_.num_nodes();
    OverlayGraph ov;
    ov.num_stations_ = tt_.num_stations();
    ov.period_ = tt_.period();
    ov.num_core_ = n - contracted_order_.size();
    ov.num_base_ttfs_ = static_cast<std::uint32_t>(g_.ttfs().size());
    ov.num_base_edges_ = static_cast<std::uint32_t>(g_.num_edges());
    ov.rank_ = std::move(rank_);
    ov.board_shift_.resize(tt_.num_stations());
    for (StationId s = 0; s < tt_.num_stations(); ++s) {
      ov.board_shift_[s] = tt_.transfer_time(s);
    }

    ov.edge_begin_.assign(n + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
      const auto& edges = state_[v] == kContracted ? up_snap_[v] : out_[v];
      ov.edge_begin_[v + 1] = static_cast<std::uint32_t>(edges.size());
    }
    for (NodeId v = 0; v < n; ++v) ov.edge_begin_[v + 1] += ov.edge_begin_[v];
    ov.heads_.reserve(ov.edge_begin_[n]);
    ov.words_.reserve(ov.edge_begin_[n]);
    ov.origins_.reserve(ov.edge_begin_[n]);
    ov.ttf_out_degree_.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      const auto& edges = state_[v] == kContracted ? up_snap_[v] : out_[v];
      std::size_t ttf_edges = 0;
      for (const WorkEdge& e : edges) {
        ov.heads_.push_back(e.node);
        ov.words_.push_back(e.word);
        ov.origins_.push_back(e.origin);
        if (!TdGraph::word_is_const(e.word)) ++ttf_edges;
        if (OverlayGraph::origin_is_shortcut(e.origin)) ++stats_.shortcuts;
      }
      ov.ttf_out_degree_.push_back(
          static_cast<std::uint8_t>(std::min<std::size_t>(ttf_edges, 255)));
      ov.max_out_degree_ = std::max(
          ov.max_out_degree_, static_cast<std::uint32_t>(edges.size()));
    }

    // Downward sweep order: descending contraction rank, so every in-edge
    // tail is finalized before its head.
    ov.down_begin_.push_back(0);
    for (std::size_t i = contracted_order_.size(); i-- > 0;) {
      const NodeId v = contracted_order_[i];
      ov.down_node_.push_back(v);
      for (const WorkEdge& e : down_snap_[v]) {
        ov.down_tails_.push_back(e.node);
        ov.down_words_.push_back(e.word);
      }
      ov.down_begin_.push_back(
          static_cast<std::uint32_t>(ov.down_tails_.size()));
    }

    ov.shortcuts_ = std::move(shortcuts_);
    ov.ttfs_ = std::move(ttfs_);
    ov.build_stats_ = stats_;
    ov.build_down_pos();
    return ov;
  }

  const Timetable& tt_;
  const TdGraph& g_;
  OverlayContractionOptions opt_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<Worker>> workers_;

  TtfPool ttfs_;  // the overlay pool under construction
  std::vector<OverlayGraph::ShortcutRec> shortcuts_;
  std::vector<std::vector<WorkEdge>> out_, in_;          // working graph
  std::vector<std::vector<WorkEdge>> up_snap_, down_snap_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint8_t> state_;
  std::vector<std::uint32_t> rank_;
  std::vector<NodeId> contracted_order_;

  LazyDAryHeap<std::uint64_t, 4> order_;  // the lazy-update ordering queue
  std::uint32_t round_ = 0;
  std::vector<std::uint32_t> picked_round_, blocked_round_;
  std::vector<NodeId> batch_;
  std::vector<std::pair<NodeId, std::uint64_t>> deferred_;
  std::vector<std::vector<Candidate>> cand_lists_;
  std::vector<std::uint8_t> capped_;

  ContractionStats stats_;
};

OverlayGraph contract_graph(const Timetable& tt, const TdGraph& g,
                            const OverlayContractionOptions& opt) {
  return ContractionBuilder(tt, g, opt).build();
}

// --- incremental re-link --------------------------------------------------

/// Friend of OverlayGraph: assembles the re-linked overlay by copying the
/// old one's structure vectors verbatim and swapping in the rebuilt pool —
/// the structural half of the exactness argument (see contraction.hpp).
class OverlayRelinker {
 public:
  static OverlayGraph splice(const OverlayGraph& src, TtfPool&& pool) {
    OverlayGraph ov;
    ov.num_stations_ = src.num_stations_;
    ov.num_core_ = src.num_core_;
    ov.period_ = src.period_;
    ov.max_out_degree_ = src.max_out_degree_;
    ov.num_base_ttfs_ = src.num_base_ttfs_;
    ov.num_base_edges_ = src.num_base_edges_;
    ov.rank_ = src.rank_;
    ov.board_shift_ = src.board_shift_;
    ov.edge_begin_ = src.edge_begin_;
    ov.heads_ = src.heads_;
    ov.words_ = src.words_;
    ov.origins_ = src.origins_;
    ov.ttf_out_degree_ = src.ttf_out_degree_;
    ov.shortcuts_ = src.shortcuts_;
    ov.down_node_ = src.down_node_;
    ov.down_begin_ = src.down_begin_;
    ov.down_tails_ = src.down_tails_;
    ov.down_words_ = src.down_words_;
    ov.down_pos_ = src.down_pos_;
    ov.ttfs_ = std::move(pool);
    ov.build_stats_ = src.build_stats_;
    return ov;
  }
};

namespace {

bool same_points(std::span<const TtfPoint> a, std::span<const TtfPoint> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].dep != b[i].dep || a[i].dur != b[i].dur) return false;
  }
  return true;
}

}  // namespace

RelinkResult relink_overlay(const Timetable& tt, const TdGraph& g_new,
                            const TdGraph& g_old, const OverlayGraph& old_ov,
                            const RelinkOptions& opt) {
  Timer timer;
  RelinkResult res;
  const auto fail = [&](RelinkStatus s) {
    res.status = s;
    res.stats.time_ms = timer.elapsed_ms();
    return std::move(res);
  };

  // Witness decisions bake travel-time bounds into the overlay structure;
  // only witness-free overlays re-link exactly (contraction.hpp).
  if (old_ov.build_stats().witness_searches != 0) {
    return fail(RelinkStatus::kStructureChanged);
  }

  // Structural identity of the perturbed graph: same topology, numerically
  // identical edge words, same period/stations/transfer times, and the same
  // TTF emptiness pattern. Any mismatch means a fresh contraction could
  // order or cap differently — full rebuild territory.
  const TtfPool& old_base = g_old.ttfs();
  const TtfPool& new_base = g_new.ttfs();
  const std::uint32_t nb_ttfs = old_ov.num_base_ttfs();
  if (g_new.num_nodes() != g_old.num_nodes() ||
      g_new.num_edges() != g_old.num_edges() ||
      g_old.num_edges() != old_ov.num_base_edges() ||
      new_base.period() != old_base.period() ||
      new_base.period() != tt.period() || old_ov.period() != tt.period() ||
      new_base.size() != old_base.size() || old_base.size() != nb_ttfs ||
      tt.num_stations() != old_ov.num_stations()) {
    return fail(RelinkStatus::kStructureChanged);
  }
  for (StationId s = 0; s < tt.num_stations(); ++s) {
    if (tt.transfer_time(s) != old_ov.board_shift(s)) {
      return fail(RelinkStatus::kStructureChanged);
    }
  }
  for (NodeId v = 0; v < g_new.num_nodes(); ++v) {
    if (g_new.edge_begin(v) != g_old.edge_begin(v)) {
      return fail(RelinkStatus::kStructureChanged);
    }
  }
  for (TdGraph::EdgeId e = 0; e < g_new.num_edges(); ++e) {
    if (g_new.edge_head(e) != g_old.edge_head(e) ||
        g_new.edge_word(e) != g_old.edge_word(e)) {
      return fail(RelinkStatus::kStructureChanged);
    }
  }

  const TtfPool& old_pool = old_ov.ttfs();
  const std::uint32_t nrecs =
      static_cast<std::uint32_t>(old_ov.num_shortcuts());
  const std::uint32_t total = nb_ttfs + nrecs;
  if (old_pool.size() != total) return fail(RelinkStatus::kStructureChanged);
  // Record r's TTF is pool function nb_ttfs + r (add_raw and record pushes
  // are strictly 1:1 in contract_node); the splice loop relies on it.
  for (std::uint32_t r = 0; r < nrecs; ++r) {
    if (old_ov.shortcut(r).word != nb_ttfs + r) {
      return fail(RelinkStatus::kStructureChanged);
    }
  }

  // Diff the base pools. The overlay pool's base prefix is the old base
  // pool verbatim, so emptiness is checked against the new base directly —
  // a function flipping between empty and non-empty changes which
  // candidates the contraction keeps (simulate_node skips empty links).
  std::vector<std::uint8_t> changed_base(nb_ttfs, 0);
  for (std::uint32_t f = 0; f < nb_ttfs; ++f) {
    if (old_base.empty_at(f) != new_base.empty_at(f)) {
      return fail(RelinkStatus::kStructureChanged);
    }
    if (!same_points(old_base.points(f), new_base.points(f))) {
      changed_base[f] = 1;
      ++res.stats.changed_base_ttfs;
    }
  }

  // Close the changed flat edges over the provenance DAG (reverse index):
  // everything reachable must be recomputed, everything else splices.
  const OverlayGraph::ProvenanceIndex pidx = old_ov.build_provenance_index();
  std::vector<std::uint8_t> affected(nrecs, 0);
  std::vector<std::uint32_t> frontier;  // origin keys still to expand
  for (TdGraph::EdgeId e = 0; e < g_new.num_edges(); ++e) {
    const std::uint32_t w = g_old.edge_word(e);
    if (TdGraph::word_is_const(w)) continue;
    if (!changed_base[TdGraph::word_ttf(w)]) continue;
    ++res.stats.changed_flat_edges;
    frontier.push_back(e);
  }
  while (!frontier.empty()) {
    const std::uint32_t key = frontier.back();
    frontier.pop_back();
    for (const std::uint32_t r : pidx.dependents(key)) {
      if (affected[r]) continue;
      affected[r] = 1;
      ++res.stats.affected_shortcuts;
      frontier.push_back(old_ov.num_base_edges() + r);
    }
  }
  if (res.stats.affected_shortcuts > opt.blast_radius_cap) {
    return fail(RelinkStatus::kBlastRadiusExceeded);
  }

  const auto deadline_hit = [&] {
    if (opt.faults && opt.faults->fires(FaultInjector::Site::kDeadline)) {
      return true;
    }
    return opt.deadline_ms > 0.0 && timer.elapsed_ms() > opt.deadline_ms;
  };
  const auto origin_word = [&](std::uint32_t o) {
    return OverlayGraph::origin_is_shortcut(o)
               ? old_ov.shortcut(o & ~OverlayGraph::kShortcutBit).word
               : g_new.edge_word(o);
  };

  // Rebuild the pool in function-index order — exactly the order the
  // contraction appended in, so indices (and thus every edge word) keep
  // their numeric values. Unchanged runs splice verbatim; affected
  // functions recompute through the same link/merge kernels against the
  // partially-built pool, whose lower indices are already final (records
  // only reference earlier records).
  TtfPool pool(tt.period(), old_pool.index_options());
  std::uint32_t f = 0;
  while (f < total) {
    const bool needs =
        f < nb_ttfs ? changed_base[f] != 0 : affected[f - nb_ttfs] != 0;
    if (!needs) {
      std::uint32_t j = f + 1;
      while (j < total &&
             !(j < nb_ttfs ? changed_base[j] != 0 : affected[j - nb_ttfs] != 0)) {
        ++j;
      }
      const std::size_t before = pool.num_points();
      pool.append_copy(old_pool, f, j);
      res.stats.copied_points += pool.num_points() - before;
      f = j;
      continue;
    }
    if (deadline_hit()) return fail(RelinkStatus::kDeadlineExceeded);
    if (f < nb_ttfs) {
      if (opt.faults) opt.faults->check(FaultInjector::Site::kPoolAppend);
      const auto pts = new_base.points(f);
      pool.add_raw(pts);
      res.stats.recomputed_points += pts.size();
    } else {
      if (opt.faults) opt.faults->check(FaultInjector::Site::kRelinkShortcut);
      const OverlayGraph::ShortcutRec& rec = old_ov.shortcut(f - nb_ttfs);
      const Ttf t =
          rec.mid != kInvalidNode
              ? link_edge_ttfs(pool, origin_word(rec.a), origin_word(rec.b))
              : merge_edge_ttfs(pool, origin_word(rec.a), origin_word(rec.b));
      // Base emptiness was checked invariant, which propagates through
      // link (empty iff a leg is empty) and merge (empty iff both are) —
      // this is defense in depth, not an expected exit.
      if (t.empty() != old_pool.empty_at(f)) {
        return fail(RelinkStatus::kStructureChanged);
      }
      if (opt.faults) opt.faults->check(FaultInjector::Site::kPoolAppend);
      const std::uint32_t idx = pool.add_raw(t.points());
      (void)idx;
      assert(idx == f);
      res.stats.recomputed_points += t.points().size();
    }
    ++res.stats.recomputed_functions;
    ++f;
  }

  res.overlay = OverlayRelinker::splice(old_ov, std::move(pool));
  res.status = RelinkStatus::kRelinked;
  res.stats.time_ms = timer.elapsed_ms();
  return res;
}

}  // namespace pconn
