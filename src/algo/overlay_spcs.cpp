#include "algo/overlay_spcs.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/timer.hpp"

namespace pconn {

namespace {

std::vector<std::unique_ptr<QueryWorkspace>> make_workspaces(unsigned n) {
  std::vector<std::unique_ptr<QueryWorkspace>> ws;
  ws.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    ws.push_back(std::make_unique<QueryWorkspace>());
  }
  return ws;
}

template <typename Queue>
std::vector<SpcsThreadStateT<Queue>> make_states(
    std::vector<std::unique_ptr<QueryWorkspace>>& ws, ThreadPool& pool) {
  // Same NUMA routing as the flat driver: pin each workspace's arena to its
  // pool thread's node before any state grows scratch into it.
  pool.run([&](std::size_t t) {
    ws[t]->arena().set_numa_node(Arena::current_numa_node());
  });
  std::vector<SpcsThreadStateT<Queue>> states;
  states.reserve(ws.size());
  for (auto& w : ws) states.emplace_back(w.get());
  return states;
}

}  // namespace

template <typename Queue>
OverlayParallelSpcsT<Queue>::OverlayParallelSpcsT(const Timetable& tt,
                                                  const TdGraph& g,
                                                  const OverlayGraph& ov,
                                                  ParallelSpcsOptions opt)
    : tt_(tt),
      g_(g),
      ov_(ov),
      opt_(opt),
      pool_(opt.threads),
      workspaces_(make_workspaces(opt.threads)),
      states_(make_states<Queue>(workspaces_, pool_)),
      thread_ms_(opt.threads, 0.0) {
  // Same loud dataset-mismatch rejection as the other overlay engines
  // (overlay_query.cpp): a stale cached overlay bound to a regenerated
  // dataset must fail in Release builds too.
  if (ov.num_nodes() != g.num_nodes() ||
      ov.num_stations() != tt.num_stations() ||
      ov.num_base_ttfs() != g.ttfs().size() ||
      ov.num_base_edges() != g.num_edges()) {
    throw std::runtime_error(
        "overlay: graph mismatch (contracted from a different dataset?)");
  }
  sweep_.reserve(opt.threads);
  for (unsigned i = 0; i < opt.threads; ++i) {
    sweep_.push_back(
        std::make_unique<SweepScratch>(scratch_alloc(workspaces_[i].get())));
  }
}

template <typename Queue>
OverlayParallelSpcsT<Queue>::~OverlayParallelSpcsT() = default;

template <typename Queue>
void OverlayParallelSpcsT<Queue>::run_partitioned(StationId s, RangeFn fn) {
  auto conns = tt_.outgoing(s);
  partition_connections_into(conns, opt_.threads, opt_.partition, tt_.period(),
                             boundaries_);
  pool_.run([&](std::size_t t) { fn(t, boundaries_[t], boundaries_[t + 1]); });
}

template <typename Queue>
void OverlayParallelSpcsT<Queue>::collect_raw_profile_at(StationId s, NodeId vn,
                                                         Profile& raw) const {
  auto conns = tt_.outgoing(s);
  raw.clear();
  raw.reserve(conns.size());
  for (std::size_t th = 0; th < states_.size(); ++th) {
    const std::uint32_t lo = boundaries_[th], hi = boundaries_[th + 1];
    for (std::uint32_t li = 0; li + lo < hi; ++li) {
      raw.push_back({conns[lo + li].dep, states_[th].arrival(vn, li)});
    }
  }
}

template <typename Queue>
void OverlayParallelSpcsT<Queue>::assemble_profile_into(StationId s,
                                                        StationId t,
                                                        Profile& out) {
  // Stations are core: the ascent labels are final without any sweep.
  collect_raw_profile_at(s, ov_.station_node(t), raw_scratch_);
  reduce_profile_into(raw_scratch_, tt_.period(), out);
}

template <typename Queue>
Profile OverlayParallelSpcsT<Queue>::assemble_profile(StationId s,
                                                      StationId t) {
  Profile out;
  assemble_profile_into(s, t, out);
  return out;
}

template <typename Queue>
void OverlayParallelSpcsT<Queue>::node_profile_into(StationId s, NodeId v,
                                                    Profile& out) {
  assert((swept_ || ov_.is_core(v)) &&
         "contracted nodes need settle_contracted() first");
  collect_raw_profile_at(s, v, raw_scratch_);
  reduce_profile_into(raw_scratch_, tt_.period(), out);
}

template <typename Queue>
Profile OverlayParallelSpcsT<Queue>::node_profile(StationId s, NodeId v) {
  Profile out;
  node_profile_into(s, v, out);
  return out;
}

template <typename Queue>
QueryStats OverlayParallelSpcsT<Queue>::accumulated_stats() const {
  QueryStats total{};
  for (const auto& st : states_) total += st.stats();
  return total;
}

template <typename Queue>
std::size_t OverlayParallelSpcsT<Queue>::scratch_bytes_reserved() const {
  std::size_t total = 0;
  for (const auto& w : workspaces_) total += w->bytes_reserved();
  return total;
}

template <typename Queue>
void OverlayParallelSpcsT<Queue>::one_to_all_into(StationId s,
                                                  OneToAllResult& out) {
  Timer total;
  out.stats = QueryStats{};
  out.max_thread_ms = 0.0;
  out.min_thread_ms = 0.0;
  full_run_ = false;
  swept_ = false;
  sweep_ms_ = 0.0;

  // Phase 1: partitioned connection-setting ascents over the overlay CSR.
  run_partitioned(s, [&](std::size_t t, std::uint32_t lo, std::uint32_t hi) {
    Timer timer;
    NoHook hook;
    SpcsOptions o{.self_pruning = opt_.self_pruning,
                  .stopping_criterion = false,
                  .prune_on_relax = opt_.prune_on_relax,
                  .relax = opt_.relax,
                  .batch_min_edges = opt_.batch_min_edges};
    states_[t].run_on(ov_, g_, tt_, tt_.outgoing(s), lo, hi, kInvalidStation,
                      o, hook);
    thread_ms_[t] = timer.elapsed_ms();
  });
  full_run_ = true;

  // Phase 3 (phase 2, the down-sweep, is the caller's opt-in
  // settle_contracted): merge + connection reduction by the master thread,
  // allocation-free when warm, exactly like the flat driver.
  Timer merge_t;
  out.profiles.resize(tt_.num_stations());
  for (StationId v = 0; v < tt_.num_stations(); ++v) {
    assemble_profile_into(s, v, out.profiles[v]);
  }
  merge_ms_ = merge_t.elapsed_ms();

  ascent_ms_ = 0.0;
  for (std::size_t t = 0; t < states_.size(); ++t) {
    out.stats += states_[t].stats();
    ascent_ms_ = std::max(ascent_ms_, thread_ms_[t]);
    out.max_thread_ms = std::max(out.max_thread_ms, thread_ms_[t]);
    out.min_thread_ms =
        t == 0 ? thread_ms_[t] : std::min(out.min_thread_ms, thread_ms_[t]);
  }
  out.stats.time_ms = total.elapsed_ms();
}

template <typename Queue>
OneToAllResult OverlayParallelSpcsT<Queue>::one_to_all(StationId s) {
  OneToAllResult res;
  one_to_all_into(s, res);
  return res;
}

template <typename Queue>
void OverlayParallelSpcsT<Queue>::station_to_station_into(
    StationId s, StationId t, StationQueryResult& out) {
  Timer total;
  out.stats = QueryStats{};
  full_run_ = false;
  swept_ = false;

  run_partitioned(s, [&](std::size_t th, std::uint32_t lo, std::uint32_t hi) {
    NoHook hook;
    SpcsOptions o{.self_pruning = opt_.self_pruning,
                  .stopping_criterion = opt_.stopping_criterion,
                  .prune_on_relax = opt_.prune_on_relax,
                  .relax = opt_.relax,
                  .batch_min_edges = opt_.batch_min_edges};
    states_[th].run_on(ov_, g_, tt_, tt_.outgoing(s), lo, hi, t, o, hook);
  });

  assemble_profile_into(s, t, out.profile);
  for (const auto& st : states_) out.stats += st.stats();
  out.stats.time_ms = total.elapsed_ms();
}

template <typename Queue>
StationQueryResult OverlayParallelSpcsT<Queue>::station_to_station(
    StationId s, StationId t) {
  StationQueryResult res;
  station_to_station_into(s, t, res);
  return res;
}

template <typename Queue>
void OverlayParallelSpcsT<Queue>::settle_contracted() {
  assert(full_run_ && "settle_contracted needs a full (no-target) run");
  if (swept_) return;  // idempotent: a re-sweep would double relax counts
  Timer t;
  pool_.run([&](std::size_t th) { sweep_partition(th); });
  sweep_ms_ = t.elapsed_ms();
  swept_ = true;
}

template <typename Queue>
void OverlayParallelSpcsT<Queue>::sweep_partition(std::size_t th) {
  SpcsThreadStateT<Queue>& st = states_[th];
  const std::size_t W = st.width();
  if (W == 0) return;

  // The thread's label matrix is node-major (slot v * W + li): each node's
  // W connection lanes are one contiguous row, so the sweep extends the
  // matrix in place — the multi-query engine's transposed-copy step
  // (multi_query.cpp settle_contracted_batch) disappears entirely.
  EpochArray<Time>& arr = st.label_matrix();
  Time* const __restrict vals = arr.values_data();
  std::uint32_t* const __restrict eps = arr.epochs_data();
  const std::uint32_t ep = arr.epoch();

  SweepScratch& sc = *sweep_[th];
  sc.raw.resize(W);
  sc.ts.resize(W);
  sc.out.resize(W);
  sc.best.resize(W);
  sc.rcnt.assign(W, 0);
  Time* const __restrict raw = sc.raw.data();
  Time* const __restrict ts_buf = sc.ts.data();
  Time* const __restrict out_buf = sc.out.data();
  Time* const __restrict best = sc.best.data();
  std::uint32_t* const __restrict rcnt = sc.rcnt.data();

  const TtfPool& pool = ov_.ttfs();
  // Mirrors the relax loop's mode split: interleaved evaluates surviving
  // lanes one by one, batch feeds the whole row to one pooled arrival_tn
  // call. The kernels are bit-identical and both paths test/count the same
  // live lanes in the same edge order, so results AND accounting match.
  const bool batched = opt_.relax != RelaxMode::kInterleaved;

  for (std::size_t i = 0; i < ov_.num_contracted(); ++i) {
    const NodeId v = ov_.down_node(i);
    for (std::size_t j = 0; j < W; ++j) best[j] = kInfTime;
    for (std::uint32_t e = ov_.down_begin(i); e < ov_.down_end(i); ++e) {
      const NodeId tail = ov_.down_tail(e);
      const std::size_t base = static_cast<std::size_t>(tail) * W;
      // Pass 1 (fused): per-lane relax accounting (a lane relaxes the edge
      // iff its tail label is finite — the flat sweep protocol) and the
      // clamped entry times the kernel's signed-lane contract needs. A
      // label can be epoch-stamped yet infinite (self-pruned): dead too.
      std::uint32_t cnt = 0;
      for (std::size_t j = 0; j < W; ++j) {
        const Time t0 = eps[base + j] == ep ? vals[base + j] : kInfTime;
        const std::uint32_t live = t0 != kInfTime;
        raw[j] = t0;
        rcnt[j] += live;
        cnt += live;
        ts_buf[j] = live ? t0 : 0;
      }
      if (cnt == 0) continue;
      const std::uint32_t w = ov_.down_word(e);
      if (batched) {
        if (w & TtfPool::kConstFlag) {
          const Time c = w & ~TtfPool::kConstFlag;
          for (std::size_t j = 0; j < W; ++j) out_buf[j] = ts_buf[j] + c;
        } else {
          pool.arrival_tn(w, ts_buf, W, out_buf);
        }
      } else {
        for (std::size_t j = 0; j < W; ++j) {
          if (raw[j] != kInfTime) out_buf[j] = ov_.arrival_by_word(w, raw[j]);
        }
      }
      // No source fix-up, unlike the station-sourced engines: SPCS sources
      // are route nodes, whose down-edge TTFs carry no folded board cost.
      // Pass 2 (fused): dead lanes masked out, strict-min in edge order.
      for (std::size_t j = 0; j < W; ++j) {
        const bool upd = raw[j] != kInfTime && out_buf[j] < best[j];
        best[j] = upd ? out_buf[j] : best[j];
      }
    }
    // Fold, don't overwrite: the ascent can settle contracted nodes on its
    // way up (sources are contracted), and those labels are achievable
    // arrivals the sweep must not discard.
    const std::size_t base_v = static_cast<std::size_t>(v) * W;
    for (std::size_t j = 0; j < W; ++j) {
      const Time a = eps[base_v + j] == ep ? vals[base_v + j] : kInfTime;
      const Time m = best[j] < a ? best[j] : a;
      if (m != kInfTime) {
        vals[base_v + j] = m;
        eps[base_v + j] = ep;
      }
    }
  }

  QueryStats& stats = st.stats_mutable();
  for (std::size_t j = 0; j < W; ++j) stats.relaxed += rcnt[j];
}

// The four shipped queue policies (queue_policy.hpp), matching the flat
// driver's instantiations.
template class OverlayParallelSpcsT<SpcsBinaryQueue>;
template class OverlayParallelSpcsT<SpcsQuaternaryQueue>;
template class OverlayParallelSpcsT<SpcsLazyQueue>;
template class OverlayParallelSpcsT<SpcsBucketQueue>;

}  // namespace pconn
