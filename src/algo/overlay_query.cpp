#include "algo/overlay_query.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pconn {

namespace {

constexpr std::uint32_t kNoEdge = std::numeric_limits<std::uint32_t>::max();

}  // namespace

// ---------------------------------------------------------------------------
// OverlayTimeQueryT

template <typename Queue>
OverlayTimeQueryT<Queue>::OverlayTimeQueryT(const Timetable& tt,
                                            const TdGraph& g,
                                            const OverlayGraph& ov,
                                            QueryWorkspace* ws)
    : tt_(tt),
      g_(g),
      ov_(ov),
      heap_(scratch_alloc(ws)),
      dist_(scratch_alloc(ws)),
      parent_(scratch_alloc(ws)),
      parent_edge_(scratch_alloc(ws)),
      batch_(scratch_alloc(ws)),
      path_(ArenaAllocator<NodeId>(scratch_alloc(ws))),
      ready_(ArenaAllocator<Time>(scratch_alloc(ws))),
      edge_path_(ArenaAllocator<std::uint32_t>(scratch_alloc(ws))) {
  // A cached overlay must match the graph it was contracted from
  // (timetable/serialize.hpp): same node space and the base pool as the
  // overlay pool's prefix, or every origin/word reference is garbage.
  // A throw, not an assert: a stale cache bound to a regenerated dataset
  // is a runtime data error and must fail loud in Release builds too.
  if (ov.num_nodes() != g.num_nodes() ||
      ov.num_stations() != tt.num_stations() ||
      ov.num_base_ttfs() != g.ttfs().size() ||
      ov.num_base_edges() != g.num_edges()) {
    throw std::runtime_error(
        "overlay: graph mismatch (contracted from a different dataset?)");
  }
  heap_.reset_capacity(ov.num_nodes());
  dist_.assign(ov.num_nodes(), kInfTime);
  parent_.assign(ov.num_nodes(), kInvalidNode);
  parent_edge_.assign(ov.num_nodes(), kNoEdge);
  // Sized for whichever graph the engine touches: overlay blocks in the
  // settle loop, flat blocks during journey replay (the RelaxBatch sizing
  // fix — an overlay core fan-out routinely exceeds the flat maximum).
  batch_.reserve(std::max(g.max_out_degree(), ov.max_out_degree()));
}

template <typename Queue>
Time OverlayTimeQueryT<Queue>::source_arrival(std::uint32_t w, Time t) const {
  if (TdGraph::word_is_const(w)) return t;  // free first boarding
  // Shortcut TTFs out of a station carry T(S) folded in; the free boarding
  // at the source evaluates the same function at t - T(S) (wrapping one
  // period up and back down when t < T(S) keeps the arithmetic unsigned).
  const Time c = ov_.board_shift(source_);
  if (c == 0) return ov_.ttfs().arrival(w, t);
  if (t >= c) return ov_.ttfs().arrival(w, t - c);
  const Time raw = ov_.ttfs().arrival(w, t + ov_.period() - c);
  return raw == kInfTime ? kInfTime : raw - ov_.period();
}

template <typename Queue>
void OverlayTimeQueryT<Queue>::run(StationId source, Time departure,
                                   StationId target) {
  stats_ = QueryStats{};
  batch_stats_.reset();
  heap_.clear();
  dist_.clear();
  parent_.clear();
  parent_edge_.clear();
  source_ = source;
  departure_ = departure;
  full_run_ = target == kInvalidStation;

  const NodeId src = ov_.station_node(source);
  dist_.set(src, departure);
  heap_.push(src, departure);
  stats_.pushed++;

  while (!heap_.empty()) {
    auto [v, key] = heap_.pop();
    if constexpr (!Queue::kAddressable) {
      if (key > dist_.get(v)) {
        stats_.stale_popped++;
        continue;
      }
    }
    stats_.settled++;
    if (target != kInvalidStation && v == ov_.station_node(target)) break;

    const std::uint32_t eb = ov_.edge_begin(v);
    const std::uint32_t ee = ov_.edge_end(v);
    const NodeId* const heads = ov_.heads_data();
    const std::uint32_t* const words = ov_.words_data();

    const auto commit = [&](NodeId head, Time t, std::uint32_t ei) {
      stats_.relaxed++;
      if (t < dist_.get(head)) {
        if constexpr (Queue::kAddressable) {
          if (heap_.push_or_decrease(head, t) == QueuePush::kPushed) {
            stats_.pushed++;
          } else {
            stats_.decreased++;
          }
        } else {
          heap_.push(head, t);
          stats_.pushed++;
        }
        dist_.set(head, t);
        parent_.set(head, v);
        parent_edge_.set(head, ei);
      }
    };

    if (v == src) {
      // Dedicated source loop, identical in every RelaxMode: constant
      // boards are free, shortcut TTFs evaluate board-discounted — a
      // different entry time than the rest of the batch, so phasing it
      // with arrival_n would change nothing but the bookkeeping.
      for (std::uint32_t ei = eb; ei < ee; ++ei) {
        if (ei + 1 < ee) {
          dist_.prefetch(heads[ei + 1]);
          ov_.prefetch_edge_ttf(ei + 1);
        }
        const NodeId head = heads[ei];
        if (dist_.get(head) <= key) continue;
        const Time t = source_arrival(words[ei], key);
        if (t == kInfTime) continue;
        commit(head, t, ei);
      }
      continue;
    }

    // Same phased discipline as the flat TimeQueryT (see time_query.cpp
    // for the pre-test/commit reasoning): gather survivors, evaluate the
    // whole block with one arrival_n call, commit in edge order with the
    // dist bound re-tested. On the overlay core the TTF fan-out is the
    // node's shortcut fan — this is where the batch kernels saturate.
    if (relax_.mode != RelaxMode::kInterleaved &&
        (relax_.mode == RelaxMode::kBatchAlways ||
         ov_.ttf_out_degree(v) >= relax_.batch_min_edges)) {
      batch_.clear();
      for (std::uint32_t ei = eb; ei < ee; ++ei) {
        if (ei + 1 < ee) dist_.prefetch(heads[ei + 1]);
        const NodeId head = heads[ei];
        if (dist_.get(head) <= key) continue;  // t >= key >= dist: hopeless
        batch_.push2(words[ei], head, ei);
      }
      batch_stats_.record(batch_.size());
      Time* const out = batch_.prepare_out();
      ov_.arrivals_by_words(batch_.words(), batch_.size(), key, out);
      for (std::size_t i = 0; i < batch_.size(); ++i) {
        const NodeId head = batch_.aux(i);
        if (dist_.get(head) <= key) continue;  // dropped by this batch
        if (out[i] == kInfTime) continue;
        commit(head, out[i], batch_.aux2(i));
      }
    } else {
      for (std::uint32_t ei = eb; ei < ee; ++ei) {
        if (ei + 1 < ee) {
          dist_.prefetch(heads[ei + 1]);
          ov_.prefetch_edge_ttf(ei + 1);
        }
        const NodeId head = heads[ei];
        if (dist_.get(head) <= key) continue;
        const Time t = ov_.arrival_by_word(words[ei], key);
        if (t == kInfTime) continue;
        commit(head, t, ei);
      }
    }
  }
  heap_.clear();
}

template <typename Queue>
void OverlayTimeQueryT<Queue>::settle_contracted() {
  assert(full_run_ && "settle_contracted needs a full (no-target) run");
  const NodeId src = ov_.station_node(source_);
  // Descending contraction rank: every down-edge tail — core or higher
  // ranked — is final before its head, so one min-pass per node suffices
  // (the CH down-path argument; no queue, no re-visits).
  for (std::size_t i = 0; i < ov_.num_contracted(); ++i) {
    const NodeId v = ov_.down_node(i);
    Time best = kInfTime;
    NodeId best_tail = kInvalidNode;
    for (std::uint32_t e = ov_.down_begin(i); e < ov_.down_end(i); ++e) {
      const NodeId tail = ov_.down_tail(e);
      const Time t0 = dist_.get(tail);
      if (t0 == kInfTime) continue;
      stats_.relaxed++;
      const std::uint32_t w = ov_.down_word(e);
      const Time t =
          tail == src ? source_arrival(w, t0) : ov_.arrival_by_word(w, t0);
      if (t != kInfTime && t < best) {
        best = t;
        best_tail = tail;
      }
    }
    if (best != kInfTime) {
      dist_.set(v, best);
      parent_.set(v, best_tail);
    }
  }
}

template <typename Queue>
Time OverlayTimeQueryT<Queue>::origin_arrival(std::uint32_t origin, Time t,
                                              bool at_source) const {
  const std::uint32_t w = OverlayGraph::origin_is_shortcut(origin)
                              ? ov_.shortcut(origin & ~OverlayGraph::kShortcutBit).word
                              : g_.edge_word(origin);
  return at_source ? source_arrival(w, t) : ov_.arrival_by_word(w, t);
}

template <typename Queue>
Time OverlayTimeQueryT<Queue>::replay_origin(std::uint32_t origin, NodeId tail,
                                             Time t, bool at_source) {
  if (!OverlayGraph::origin_is_shortcut(origin)) {
    // A flat edge: evaluate exactly like the flat relax loop (the overlay
    // pool's prefix is the base pool, so the word needs no translation).
    const std::uint32_t w = g_.edge_word(origin);
    const Time arr = at_source && TdGraph::word_is_const(w)
                         ? t
                         : ov_.arrival_by_word(w, t);
    path_.push_back(g_.edge_head(origin));
    ready_.push_back(arr);
    return arr;
  }
  const OverlayGraph::ShortcutRec& r =
      ov_.shortcut(origin & ~OverlayGraph::kShortcutBit);
  if (r.mid != kInvalidNode) {  // link: tail -> mid -> head
    const Time tm = replay_origin(r.a, tail, t, at_source);
    return replay_origin(r.b, r.mid, tm, false);
  }
  // Merge: ride whichever branch wins at this departure time (ties to the
  // older branch — the merged TTF's value is the min of the two, so the
  // chosen branch reproduces the query's arrival exactly).
  const Time ta = origin_arrival(r.a, t, at_source);
  const Time tb = origin_arrival(r.b, t, at_source);
  return replay_origin(ta <= tb ? r.a : r.b, tail, t, at_source);
}

template <typename Queue>
bool OverlayTimeQueryT<Queue>::extract_journey_into(StationId source,
                                                    Time departure,
                                                    StationId target,
                                                    Journey& j) {
  assert(source == source_ && departure == departure_ &&
         "extract_journey_into must follow run() with the same query");
  j.source = source;
  j.target = target;
  j.departure = departure;
  j.arrival = kInfTime;
  j.legs.clear();

  const NodeId src = ov_.station_node(source);
  const NodeId dst = ov_.station_node(target);
  if (dist_.get(dst) == kInfTime) return false;

  // Overlay parent chain, then shortcut expansion to the flat node path
  // with forward-replayed ready times.
  edge_path_.clear();
  for (NodeId v = dst; v != src;) {
    const std::uint32_t pe = parent_edge_.get(v);
    if (pe == kNoEdge) return false;  // unreachable tree slot
    edge_path_.push_back(pe);
    v = parent_.get(v);
  }
  std::reverse(edge_path_.begin(), edge_path_.end());

  path_.clear();
  ready_.clear();
  path_.push_back(src);
  ready_.push_back(departure);
  Time t = departure;
  NodeId tail = src;
  for (const std::uint32_t pe : edge_path_) {
    t = replay_origin(ov_.edge_origin(pe), tail, t, tail == src);
    tail = ov_.edge_head(pe);
  }
  j.arrival = dist_.get(dst);
  assert(t == j.arrival && "replayed path must reproduce the query arrival");
  (void)t;

  journey_legs_from_path(
      tt_, g_, std::span<const NodeId>(path_.data(), path_.size()),
      [&](std::size_t i) { return ready_[i]; }, j);
  return true;
}

template class OverlayTimeQueryT<TimeBinaryQueue>;
template class OverlayTimeQueryT<TimeQuaternaryQueue>;
template class OverlayTimeQueryT<TimeLazyQueue>;
template class OverlayTimeQueryT<TimeBucketQueue>;

// ---------------------------------------------------------------------------
// OverlayLcProfileQueryT

template <typename Queue>
OverlayLcProfileQueryT<Queue>::OverlayLcProfileQueryT(const Timetable& tt,
                                                      const OverlayGraph& ov,
                                                      QueryWorkspace* ws)
    : tt_(tt),
      ov_(ov),
      heap_(scratch_alloc(ws)),
      qkey_(scratch_alloc(ws)),
      fresh_(ArenaAllocator<std::uint8_t>(scratch_alloc(ws))),
      touched_(ArenaAllocator<NodeId>(scratch_alloc(ws))),
      dirty_(ArenaAllocator<std::uint8_t>(scratch_alloc(ws))),
      init_(ArenaAllocator<ProfilePoint>(scratch_alloc(ws))),
      cand_(ArenaAllocator<ProfilePoint>(scratch_alloc(ws))),
      union_(ArenaAllocator<ProfilePoint>(scratch_alloc(ws))),
      merged_(ArenaAllocator<ProfilePoint>(scratch_alloc(ws))) {
  // Same loud dataset-mismatch rejection as the time engine. No TdGraph
  // here, but its node/edge/TTF counts are determined by the timetable
  // (stations + one node per route stop; per route of n stops: n alights,
  // n-1 boards, n-1 travel TTF edges), so the check loses nothing.
  std::size_t nodes = tt.num_stations(), edges = 0, funcs = 0;
  for (const Route& r : tt.routes()) {
    nodes += r.stops.size();
    edges += 3 * r.stops.size() - 2;
    funcs += r.stops.size() - 1;
  }
  if (ov.num_stations() != tt.num_stations() || ov.period() != tt.period() ||
      ov.num_nodes() != nodes || ov.num_base_edges() != edges ||
      ov.num_base_ttfs() != funcs) {
    throw std::runtime_error(
        "overlay: timetable mismatch (contracted from a different dataset?)");
  }
  heap_.reset_capacity(ov.num_nodes());
  labels_.resize(ov.num_nodes());
  pending_.resize(ov.num_nodes());
  fresh_.assign(ov.num_nodes(), 0);
  dirty_.assign(ov.num_nodes(), 0);
}

template <typename Queue>
void OverlayLcProfileQueryT<Queue>::run(StationId s) {
  stats_ = QueryStats{};
  batch_stats_.reset();
  heap_.clear();
  if constexpr (!Queue::kAddressable) {
    qkey_.ensure_and_clear(ov_.num_nodes(), kInfTime);
  }
  for (NodeId v : touched_) {
    labels_[v].clear();
    pending_[v].clear();
    fresh_[v] = 0;
    dirty_[v] = 0;
  }
  touched_.clear();
  auto touch = [&](NodeId v) {
    if (!dirty_[v]) {
      dirty_[v] = 1;
      touched_.push_back(v);
    }
  };

  auto enqueue = [&](NodeId v, Time key) {
    if constexpr (Queue::kAddressable) {
      switch (heap_.push_or_decrease(v, key)) {
        case QueuePush::kPushed:
          stats_.pushed++;
          break;
        case QueuePush::kDecreased:
          stats_.decreased++;
          break;
        case QueuePush::kUnchanged:
          break;
      }
    } else {
      const bool queued = qkey_.touched(v) && qkey_.get(v) != kInfTime;
      if (!queued || key < qkey_.get(v)) {
        heap_.push(v, key);
        qkey_.set(v, key);
        stats_.pushed++;
      }
    }
  };

  const NodeId src = ov_.station_node(s);
  const Time period = ov_.period();
  const Time shift = ov_.board_shift(s);
  {
    init_.clear();
    for (const Connection& c : tt_.outgoing(s)) {
      if (init_.empty() || init_.back().dep != c.dep) {
        init_.push_back({c.dep, c.dep});
      }
    }
    if (init_.empty()) return;
    reduce_profile_into(init_, tt_.period(), merged_);
    labels_[src].assign(merged_.begin(), merged_.end());
    touch(src);
    fresh_[src] = 1;
    enqueue(src, labels_[src].front().arr);
  }

  while (!heap_.empty()) {
    auto [v, key] = heap_.pop();
    if constexpr (!Queue::kAddressable) {
      if (!qkey_.touched(v) || qkey_.get(v) != key) {
        stats_.stale_popped++;
        continue;
      }
      qkey_.set(v, kInfTime);
    }
    stats_.settled++;

    // Deferred absorption (see the class comment): fold everything queued
    // at v since its last settle into the label with ONE k-way merge —
    // sort the concatenated candidate runs, one std::merge against the
    // label, one reduction — instead of a pairwise reduce per edge.
    Profile& pend = pending_[v];
    if (!pend.empty()) {
      std::sort(pend.begin(), pend.end(), profile_point_less);
      Profile& lab = labels_[v];
      if (lab.empty()) {
        reduce_profile_into(pend, tt_.period(), merged_);
      } else {
        union_.clear();
        union_.reserve(lab.size() + pend.size());
        std::merge(lab.begin(), lab.end(), pend.begin(), pend.end(),
                   std::back_inserter(union_), profile_point_less);
        reduce_profile_into(union_, tt_.period(), merged_);
      }
      pend.clear();
      if (merged_.size() != lab.size() ||
          !std::equal(merged_.begin(), merged_.end(), lab.begin())) {
        lab.assign(merged_.begin(), merged_.end());
        fresh_[v] = 1;
      }
    }
    // Label unchanged since its last relax: every candidate this settle
    // could emit was already emitted (and is dominated at its head).
    if (!fresh_[v]) continue;
    fresh_[v] = 0;
    stats_.label_points += labels_[v].size();

    const std::uint32_t eb = ov_.edge_begin(v);
    const std::uint32_t ee = ov_.edge_end(v);
    const NodeId* const heads = ov_.heads_data();
    for (std::uint32_t ei = eb; ei < ee; ++ei) {
      if (ei + 1 < ee) ov_.prefetch_edge_ttf(ei + 1);
      const NodeId head = heads[ei];
      const std::uint32_t w = ov_.edge_word(ei);
      const Profile& tail = labels_[v];
      cand_.clear();
      cand_.reserve(tail.size());
      Time cand_min = kInfTime;
      const bool at_src = v == src;
      const bool free_board = at_src && TdGraph::word_is_const(w);
      if (relax_mode_ != RelaxMode::kInterleaved) {
        if (!TdGraph::word_is_const(w)) {
          // The label is the batch dimension (see lc_profile.cpp). At the
          // source the shortcut's folded board cost is undone by entering
          // one period late and landing one period early — a constant
          // offset keeps the entry times ascending for the sorted kernel.
          batch_stats_.record(tail.size());
          if (at_src && shift > 0) {
            const Time up = period - shift;
            ov_.ttfs().arrival_tn_sorted_fused(
                TdGraph::word_ttf(w), tail.size(),
                [&](std::size_t k) { return tail[k].arr + up; },
                [&](std::size_t k, Time t) {
                  if (t == kInfTime) return;
                  cand_.push_back({tail[k].dep, t - period});
                });
          } else {
            ov_.ttfs().arrival_tn_sorted_fused(
                TdGraph::word_ttf(w), tail.size(),
                [&](std::size_t k) { return tail[k].arr; },
                [&](std::size_t k, Time t) {
                  if (t == kInfTime) return;
                  cand_.push_back({tail[k].dep, t});
                });
          }
        } else {
          const Time delta_w = free_board ? 0 : TdGraph::word_weight(w);
          cand_.resize(tail.size());
          for (std::size_t k = 0; k < tail.size(); ++k) {
            cand_[k] = {tail[k].dep, tail[k].arr + delta_w};
          }
        }
        if (!cand_.empty()) cand_min = cand_.front().arr;
      } else {
        for (const ProfilePoint& p : tail) {
          Time t;
          if (free_board) {
            t = p.arr;
          } else if (at_src && !TdGraph::word_is_const(w) && shift > 0) {
            const Time raw =
                ov_.ttfs().arrival(TdGraph::word_ttf(w),
                                   p.arr + period - shift);
            t = raw == kInfTime ? kInfTime : raw - period;
          } else {
            t = ov_.arrival_by_word(w, p.arr);
          }
          if (t == kInfTime) continue;
          cand_.push_back({p.dep, t});
          cand_min = std::min(cand_min, t);
        }
      }
      if (cand_.empty()) continue;
      stats_.relaxed++;

      Profile& head_pend = pending_[head];
      Profile& label = labels_[head];
      if (!fresh_[head] && cand_.size() >= kLcEagerFoldMinRun) {
        // First improving run since the head's last relax, and long enough
        // to amortize re-reducing the whole label: merge eagerly, exactly
        // the pairwise path — it keeps the label fresh, so the dominance
        // tests below stay sharp. Shorter runs fall through to the
        // deferred pile (kLcEagerFoldMinRun, graph/profile.hpp) so many
        // tiny shortcut-fan runs fold in one settle-time k-way merge.
        if (label.empty()) {
          reduce_profile_into(cand_, tt_.period(), merged_);
        } else {
          union_.clear();
          union_.reserve(label.size() + cand_.size());
          std::merge(label.begin(), label.end(), cand_.begin(), cand_.end(),
                     std::back_inserter(union_), profile_point_less);
          reduce_profile_into(union_, tt_.period(), merged_);
        }
        if (merged_.size() == label.size() &&
            std::equal(merged_.begin(), merged_.end(), label.begin())) {
          continue;
        }
        label.assign(merged_.begin(), merged_.end());
        fresh_[head] = 1;
        touch(head);
        enqueue(head, cand_min);
        continue;
      }

      // Burst case (a second run before the head settles — shortcut fans
      // converging on a hub): defer into the head's pending pile, which
      // its next settle folds in with one k-way merge. Dominance filter
      // first: a reduced label's arrivals ascend with departures, so the
      // arrival of the first label point departing at-or-after c.dep is
      // the suffix minimum c must beat (plus the cyclic wrap bound) to
      // survive the union reduce. Dominated points can never un-dominate
      // — labels only improve — and never change which label points
      // survive, so dropping them here is exact; a fully dominated run
      // leaves the label unchanged and needs no queue round at all.
      Time enq_min = kInfTime;
      if (label.empty()) {
        head_pend.insert(head_pend.end(), cand_.begin(), cand_.end());
        enq_min = cand_min;
      } else {
        const Time wrap_min = label.front().arr + period;
        std::size_t li = 0;
        for (const ProfilePoint& c : cand_) {
          while (li < label.size() && label[li].dep < c.dep) ++li;
          Time bound = li < label.size() ? label[li].arr : kInfTime;
          bound = std::min(bound, wrap_min);
          if (c.arr >= bound) continue;
          head_pend.push_back(c);
          enq_min = std::min(enq_min, c.arr);
        }
      }
      if (enq_min == kInfTime) continue;  // fully dominated
      touch(head);
      enqueue(head, enq_min);
    }
  }
}

template class OverlayLcProfileQueryT<TimeBinaryQueue>;
template class OverlayLcProfileQueryT<TimeQuaternaryQueue>;
template class OverlayLcProfileQueryT<TimeLazyQueue>;

}  // namespace pconn
