// TtfPool — all travel-time functions of one graph in a single CSR.
//
// The seed representation kept one heap-allocated std::vector<TtfPoint> per
// Ttf; every time-dependent relax chased edge -> Ttf object -> points
// vector through two dependent cache misses and then binary-searched the
// points. The pool stores every function's points back-to-back in one
// contiguous array (16 bytes of metadata per function) and replaces the
// per-call binary search with a precomputed time-bucket index:
//
//   * per function, B buckets partition [0, period); B defaults to
//     bit_ceil(|points|) and is tunable per network (TtfIndexOptions):
//     `buckets_per_point` scales the bucket count and functions below
//     `min_indexed_points` drop the index entirely — they keep a single
//     bucket pointing at their first point, so evaluation degenerates to
//     the linear lower_bound scan (identical results, no index memory);
//   * bucket_idx_[b] holds the first point whose departure falls into
//     bucket b or later, so eval() starts its scan there and walks past at
//     most the points sharing the query's bucket — O(1) expected, against
//     O(log n) dependent branchy loads for the search;
//   * the bucket of a time is a multiply-shift against a precomputed
//     2^32/period reciprocal (no division); the mapping may undershoot by
//     up to two buckets, which only lengthens the scan, never skips points.
//
// Batch evaluation (the relax-loop entry points since the gather ->
// eval -> commit restructure, docs/architecture.md "Batch relaxation"):
//   * arrival_n()  — many functions, one entry time. Entries may carry the
//     kConstFlag top bit, in which case the low 31 bits are an inline
//     constant travel time (the TdGraph packed-word encoding) evaluated
//     without touching the pool;
//   * arrival_tn() — one function, many entry times (the LC link step).
// Both run an 8-lane AVX2 gather kernel when the CPU has it (runtime
// dispatch, PCONN_NO_AVX2 escape hatch) and a scalar loop otherwise; the
// kernels replace the per-eval hardware division of `t % period` with the
// same reciprocal multiply the bucket mapping uses and are bit-identical
// to the scalar path (tests/ttf_test.cpp sweeps per second).
//
// Results are bit-identical to Ttf::eval / Ttf::point_used on the same
// points (tests/ttf_test.cpp proves it exhaustively); the pool is the
// read side, Ttf stays the build/test-side representation.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/ttf.hpp"
#include "util/prefetch.hpp"

namespace pconn {

/// Per-network memory/speed knob for the evaluation index (ROADMAP "TTF
/// index memory knob"). The index costs ~1 uint32 per point at the default
/// density; dense bus networks with huge functions may prefer a lower
/// density, memory-tight deployments can drop the index for small
/// functions outright (a <5-point function spans at most one cache line —
/// the linear scan is as fast as the bucket entry it replaces).
struct TtfIndexOptions {
  /// Buckets per point before rounding to a power of two (densities < 1
  /// trade expected scan length for index memory).
  double buckets_per_point = 1.0;
  /// Functions with fewer points keep a single bucket — no index, linear
  /// lower_bound scan from the first point. 5 is free (see above).
  std::uint32_t min_indexed_points = 5;

  /// Defaults overridable via PCONN_TTF_BUCKET_DENSITY and
  /// PCONN_TTF_MIN_INDEXED (per-network tuning without a rebuild).
  static TtfIndexOptions from_env();
};

class TtfPool {
 public:
  /// Entries of arrival_n with this bit set are inline constant travel
  /// times, not pool indices (mirrored by TdGraph's packed edge word).
  static constexpr std::uint32_t kConstFlag = 1u << 31;

  explicit TtfPool(Time period = kDayseconds,
                   TtfIndexOptions idx = TtfIndexOptions::from_env()) {
    idx_ = idx;
    reset(period);
  }

  /// reset() with a new per-network index configuration.
  void reset(Time period, TtfIndexOptions idx) {
    idx_ = idx;
    reset(period);
  }

  /// Drops all functions and re-anchors the bucket mapping on `period`.
  void reset(Time period) {
    assert(period > 0);
    // The AVX2 kernels compare times in signed 32-bit lanes; every real
    // timetable period (a day, a week) is far below this.
    assert(period < (Time{1} << 30));
    period_ = period;
    inv_period_ = (std::uint64_t{1} << 32) / period;
    points_.clear();
    meta_.clear();
    bucket_idx_.clear();
  }

  /// Appends a built (sorted, pruned) function; returns its pool index.
  std::uint32_t add(const Ttf& f);

  /// Appends already-built points verbatim (sorted by departure, unique
  /// departures, dominance-pruned — exactly what Ttf::build and points()
  /// produce). No re-validation beyond debug asserts: this is the path the
  /// contraction overlay and the serializer use to move functions between
  /// pools without paying the pruning pass again.
  std::uint32_t add_raw(std::span<const TtfPoint> pts);

  /// Bulk-appends functions [begin, end) of `src` verbatim — points, bucket
  /// tables and metadata are range-copied with the index offsets shifted,
  /// skipping add_raw's per-function bucket construction entirely. The
  /// appended functions keep their relative order and spacing, so function
  /// src[begin + k] becomes this[size() before the call + k] and evaluates
  /// bit-identically. This is the incremental re-link fast path: unchanged
  /// runs of a stale epoch's pool splice into the new epoch's pool in one
  /// memcpy-shaped pass (src/live/, algo/contraction re-link). Requires
  /// matching period and index options; src must not alias this.
  void append_copy(const TtfPool& src, std::uint32_t begin, std::uint32_t end);

  std::size_t size() const { return meta_.size(); }
  std::size_t num_points() const { return points_.size(); }
  Time period() const { return period_; }
  const TtfIndexOptions& index_options() const { return idx_; }

  bool empty_at(std::uint32_t f) const { return meta_[f].count == 0; }
  std::span<const TtfPoint> points(std::uint32_t f) const {
    const TtfMeta& m = meta_[f];
    return {points_.data() + m.first, m.count};
  }

  /// Travel time when showing up at absolute time t (kInfTime when empty).
  /// Same contract as Ttf::eval, minus the binary search.
  Time eval(std::uint32_t f, Time t) const {
    const TtfMeta& m = meta_[f];
    if (m.count == 0) return kInfTime;
    const Time tau = t % period_;
    const TtfPoint& p = points_[scan_from_bucket(m, tau)];
    const Time wait = p.dep >= tau ? p.dep - tau : period_ + p.dep - tau;
    return wait + p.dur;
  }

  /// Absolute arrival when entering the edge at absolute time t.
  Time arrival(std::uint32_t f, Time t) const {
    const Time w = eval(f, t);
    return w == kInfTime ? kInfTime : t + w;
  }

  /// Absolute arrival via one arrival_n entry: a pool index, or an inline
  /// constant travel time when the kConstFlag bit is set.
  Time arrival_entry(std::uint32_t word, Time t) const {
    if (word & kConstFlag) return t + (word & ~kConstFlag);
    return arrival(word, t);
  }

  /// The connection point eval() uses, as an index into points(f).
  /// Identical to Ttf::point_used (journey unpacking relies on this).
  std::size_t point_used(std::uint32_t f, Time t) const {
    const TtfMeta& m = meta_[f];
    assert(m.count != 0);
    return scan_from_bucket(m, t % period_) - m.first;
  }

  /// Batch evaluation, many functions at one entry time: absolute arrivals
  /// via entries[0..n) for entry time t. Entries are pool indices or
  /// kConstFlag-tagged inline constants (see arrival_entry). AVX2 gather
  /// kernel under runtime dispatch, scalar prefetching loop otherwise;
  /// bit-identical either way.
  void arrival_n(const std::uint32_t* entries, std::size_t n, Time t,
                 Time* out) const;

  /// Batch evaluation, one function at many entry times:
  /// out[i] = arrival(f, ts[i]). Same dispatch as arrival_n.
  void arrival_tn(std::uint32_t f, const Time* ts, std::size_t n,
                  Time* out) const;

  /// Batch evaluation, many (function, entry time) pairs:
  /// out[i] = arrival_entry(entries[i], ts[i]) — the cross-query frontier
  /// shape (algo/multi_query.hpp), where every pending edge carries the pop
  /// key of its own query lane. The AVX2 kernel combines arrival_n's masked
  /// metadata/point gathers with arrival_tn's per-lane reciprocal modulo
  /// and a per-lane variable-shift bucket; bit-identical to the scalar
  /// entry-by-entry loop (tests/ttf_test.cpp sweeps it like the others).
  void arrival_ptn(const std::uint32_t* entries, const Time* ts, std::size_t n,
                   Time* out) const;

  /// Sorted-batch evaluation, one function at ASCENDING entry times — the
  /// LC link shape (a reduced profile's arrivals are strictly increasing).
  /// A two-pointer merge over the function's sorted points replaces the
  /// per-entry division and bucket lookup: the reduced time advances
  /// incrementally and the candidate point only ever moves forward,
  /// re-entering through the bucket index on a period wrap. Bit-identical
  /// to arrival(f, ts[i]); asserts the precondition in debug builds.
  void arrival_tn_sorted(std::uint32_t f, const Time* ts, std::size_t n,
                         Time* out) const;

  /// Fused form of arrival_tn_sorted for strided/projected inputs: calls
  /// emit(i, arrival) for i in [0, n) with entry times get(i), which must
  /// ascend. Lets the LC link read profile points and build the candidate
  /// profile in one pass, no staging copies.
  template <typename GetTime, typename Emit>
  void arrival_tn_sorted_fused(std::uint32_t f, std::size_t n, GetTime get,
                               Emit emit) const {
    const TtfMeta& m = meta_[f];
    if (n == 0) return;
    if (m.count == 0) {
      for (std::size_t i = 0; i < n; ++i) emit(i, kInfTime);
      return;
    }
    const std::uint32_t end = m.first + m.count;
    Time prev_t = get(0);
    Time tau = prev_t % period_;  // the only unconditional division
    std::uint32_t j = lower_bound_abs(m, tau);
    for (std::size_t i = 0; i < n; ++i) {
      const Time t = get(i);
      assert(t >= prev_t && "sorted link requires ascending entry times");
      const Time delta = t - prev_t;
      if (delta >= period_) {  // skipped whole periods: re-anchor (rare)
        tau = t % period_;
        j = lower_bound_abs(m, tau);
      } else if (delta > 0) {
        tau += delta;
        if (tau >= period_) {  // wrapped once: re-enter through the index
          tau -= period_;
          j = lower_bound_abs(m, tau);
        } else {
          while (j < end && points_[j].dep < tau) ++j;
        }
      }
      prev_t = t;
      const TtfPoint& p = points_[j < end ? j : m.first];
      const Time wait = p.dep >= tau ? p.dep - tau : period_ + p.dep - tau;
      emit(i, t + wait + p.dur);
    }
  }

  /// Hints the function's point block into cache (relax lookahead).
  void prefetch_points(std::uint32_t f) const {
    pconn::prefetch(points_.data() + meta_[f].first);
  }

  /// Pool footprint in bytes: points, metadata and the evaluation index.
  std::size_t memory_bytes() const {
    return points_.size() * sizeof(TtfPoint) + meta_.size() * sizeof(TtfMeta) +
           bucket_idx_.size() * sizeof(std::uint32_t);
  }
  /// Index-only share of memory_bytes() (docs/architecture.md reporting).
  std::size_t index_bytes() const {
    return meta_.size() * sizeof(TtfMeta) +
           bucket_idx_.size() * sizeof(std::uint32_t);
  }

 private:
  struct TtfMeta {
    std::uint32_t first;    // index of the first point in points_
    std::uint32_t count;    // number of points
    std::uint32_t bucket0;  // index of bucket 0 in bucket_idx_
    std::uint32_t log2b;    // log2 of the function's bucket count
  };

  /// Bucket of a reduced time: floor(tau * B / period), computed as a
  /// multiply-shift against inv_period_. The truncated reciprocal can
  /// undershoot the exact quotient by at most two, so the scan below may
  /// start up to two buckets early — correct, marginally longer.
  std::uint32_t bucket_of(Time tau, std::uint32_t log2b) const {
    return static_cast<std::uint32_t>(
        ((static_cast<std::uint64_t>(tau) << log2b) * inv_period_) >> 32);
  }

  /// First point with dep >= tau as an absolute index into points_ — may
  /// be one past the function's last point when every point departs
  /// earlier. Exactly lower_bound, entered via the bucket table.
  std::uint32_t lower_bound_abs(const TtfMeta& m, Time tau) const {
    std::uint32_t i = bucket_idx_[m.bucket0 + bucket_of(tau, m.log2b)];
    const std::uint32_t end = m.first + m.count;
    while (i < end && points_[i].dep < tau) ++i;
    return i;
  }

  /// lower_bound_abs wrapping to the function's first point (the cyclic
  /// "next departure" selection eval uses).
  std::uint32_t scan_from_bucket(const TtfMeta& m, Time tau) const {
    const std::uint32_t i = lower_bound_abs(m, tau);
    return i < m.first + m.count ? i : m.first;
  }

  void arrival_n_scalar(const std::uint32_t* entries, std::size_t n, Time t,
                        Time* out) const;
  void arrival_tn_scalar(std::uint32_t f, const Time* ts, std::size_t n,
                         Time* out) const;
  void arrival_ptn_scalar(const std::uint32_t* entries, const Time* ts,
                          std::size_t n, Time* out) const;
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  void arrival_n_avx2(const std::uint32_t* entries, std::size_t n, Time t,
                      Time* out) const;
  void arrival_tn_avx2(std::uint32_t f, const Time* ts, std::size_t n,
                       Time* out) const;
  void arrival_ptn_avx2(const std::uint32_t* entries, const Time* ts,
                        std::size_t n, Time* out) const;
#endif

  Time period_ = kDayseconds;
  std::uint64_t inv_period_ = 0;          // floor(2^32 / period_)
  TtfIndexOptions idx_;
  std::vector<TtfPoint> points_;          // all functions, back to back
  std::vector<TtfMeta> meta_;             // one per function
  std::vector<std::uint32_t> bucket_idx_; // per-function bucket tables
};

}  // namespace pconn
