// TtfPool — all travel-time functions of one graph in a single CSR.
//
// The seed representation kept one heap-allocated std::vector<TtfPoint> per
// Ttf; every time-dependent relax chased edge -> Ttf object -> points
// vector through two dependent cache misses and then binary-searched the
// points. The pool stores every function's points back-to-back in one
// contiguous array (16 bytes of metadata per function) and replaces the
// per-call binary search with a precomputed time-bucket index:
//
//   * per function, B = bit_ceil(|points|) buckets partition [0, period);
//   * bucket_idx_[b] holds the first point whose departure falls into
//     bucket b or later, so eval() starts its scan there and walks past at
//     most the points sharing the query's bucket — O(1) expected, against
//     O(log n) dependent branchy loads for the search;
//   * the bucket of a time is a multiply-shift against a precomputed
//     2^32/period reciprocal (no division); the mapping may undershoot by
//     up to two buckets, which only lengthens the scan, never skips points.
//
// Results are bit-identical to Ttf::eval / Ttf::point_used on the same
// points (tests/ttf_test.cpp proves it exhaustively); the pool is the
// read side, Ttf stays the build/test-side representation.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/ttf.hpp"
#include "util/prefetch.hpp"

namespace pconn {

class TtfPool {
 public:
  explicit TtfPool(Time period = kDayseconds) { reset(period); }

  /// Drops all functions and re-anchors the bucket mapping on `period`.
  void reset(Time period) {
    assert(period > 0);
    period_ = period;
    inv_period_ = (std::uint64_t{1} << 32) / period;
    points_.clear();
    meta_.clear();
    bucket_idx_.clear();
  }

  /// Appends a built (sorted, pruned) function; returns its pool index.
  std::uint32_t add(const Ttf& f);

  std::size_t size() const { return meta_.size(); }
  std::size_t num_points() const { return points_.size(); }
  Time period() const { return period_; }

  bool empty_at(std::uint32_t f) const { return meta_[f].count == 0; }
  std::span<const TtfPoint> points(std::uint32_t f) const {
    const TtfMeta& m = meta_[f];
    return {points_.data() + m.first, m.count};
  }

  /// Travel time when showing up at absolute time t (kInfTime when empty).
  /// Same contract as Ttf::eval, minus the binary search.
  Time eval(std::uint32_t f, Time t) const {
    const TtfMeta& m = meta_[f];
    if (m.count == 0) return kInfTime;
    const Time tau = t % period_;
    const TtfPoint& p = points_[scan_from_bucket(m, tau)];
    const Time wait = p.dep >= tau ? p.dep - tau : period_ + p.dep - tau;
    return wait + p.dur;
  }

  /// Absolute arrival when entering the edge at absolute time t.
  Time arrival(std::uint32_t f, Time t) const {
    const Time w = eval(f, t);
    return w == kInfTime ? kInfTime : t + w;
  }

  /// The connection point eval() uses, as an index into points(f).
  /// Identical to Ttf::point_used (journey unpacking relies on this).
  std::size_t point_used(std::uint32_t f, Time t) const {
    const TtfMeta& m = meta_[f];
    assert(m.count != 0);
    return scan_from_bucket(m, t % period_) - m.first;
  }

  /// Batch evaluation: absolute arrivals via functions fs[0..n) for one
  /// entry time, with the next function's points prefetched one iteration
  /// ahead (the relax-loop access pattern, benchable in isolation).
  void arrival_n(const std::uint32_t* fs, std::size_t n, Time t,
                 Time* out) const {
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 1 < n) prefetch_points(fs[i + 1]);
      out[i] = arrival(fs[i], t);
    }
  }

  /// Hints the function's point block into cache (relax lookahead).
  void prefetch_points(std::uint32_t f) const {
    pconn::prefetch(points_.data() + meta_[f].first);
  }

  /// Pool footprint in bytes: points, metadata and the evaluation index.
  std::size_t memory_bytes() const {
    return points_.size() * sizeof(TtfPoint) + meta_.size() * sizeof(TtfMeta) +
           bucket_idx_.size() * sizeof(std::uint32_t);
  }
  /// Index-only share of memory_bytes() (docs/architecture.md reporting).
  std::size_t index_bytes() const {
    return meta_.size() * sizeof(TtfMeta) +
           bucket_idx_.size() * sizeof(std::uint32_t);
  }

 private:
  struct TtfMeta {
    std::uint32_t first;    // index of the first point in points_
    std::uint32_t count;    // number of points
    std::uint32_t bucket0;  // index of bucket 0 in bucket_idx_
    std::uint32_t log2b;    // log2 of the function's bucket count
  };

  /// Bucket of a reduced time: floor(tau * B / period), computed as a
  /// multiply-shift against inv_period_. The truncated reciprocal can
  /// undershoot the exact quotient by at most two, so the scan below may
  /// start up to two buckets early — correct, marginally longer.
  std::uint32_t bucket_of(Time tau, std::uint32_t log2b) const {
    return static_cast<std::uint32_t>(
        ((static_cast<std::uint64_t>(tau) << log2b) * inv_period_) >> 32);
  }

  /// First point with dep >= tau (wrapping to the function's first point),
  /// as an absolute index into points_. Exactly lower_bound, entered via
  /// the bucket table.
  std::uint32_t scan_from_bucket(const TtfMeta& m, Time tau) const {
    std::uint32_t i = bucket_idx_[m.bucket0 + bucket_of(tau, m.log2b)];
    const std::uint32_t end = m.first + m.count;
    while (i < end && points_[i].dep < tau) ++i;
    return i < end ? i : m.first;
  }

  Time period_ = kDayseconds;
  std::uint64_t inv_period_ = 0;          // floor(2^32 / period_)
  std::vector<TtfPoint> points_;          // all functions, back to back
  std::vector<TtfMeta> meta_;             // one per function
  std::vector<std::uint32_t> bucket_idx_; // per-function bucket tables
};

}  // namespace pconn
