// OverlayGraph — the product of the time-dependent core contraction
// (algo/contraction.hpp): the station-centric overlay the core-routed query
// engines (algo/overlay_query.hpp) run on.
//
// Contraction removes *route nodes* from the time-dependent graph one by
// one (stations are never contracted — every public query result is a
// station arrival or a station profile, and pinning the stations into the
// core keeps those results byte-identical to the flat graph). Removing a
// node inserts witness-checked shortcut edges between its neighbors whose
// travel-time functions are the *link* of the two bypassed functions;
// parallel shortcuts between the same pair are *merged* (pointwise min).
// Every shortcut TTF is appended into this graph's own TtfPool, whose
// first `num_base_ttfs()` functions are a verbatim copy of the base
// graph's pool — so base edge words keep their numeric value, and the
// overlay shares the SoA/CSR layout, the bucket eval index and the AVX2
// batch kernels (arrival_n) with the flat relax loops.
//
// Two CSRs survive the contraction:
//   * the unified out-CSR ("upward"): a core node's surviving edges (all
//     heads are core), and for a contracted node the out-edges it had at
//     the moment of contraction (all heads ranked higher, or core). A
//     Dijkstra from any core node therefore never leaves the core; the
//     multi-edge station pairs it relaxes carry wide per-node TTF fan-out
//     — the shape the batched gather -> eval -> commit loop wants;
//   * the downward in-CSR: each contracted node's in-edges at contraction
//     time, stored in descending contraction rank. One queue-less sweep
//     over it after a full core run extends exact arrivals to every
//     contracted node (tails are always settled first), which is how the
//     overlay engines reproduce flat one-to-all results at ALL nodes.
//
// Shortcut provenance is kept per edge (`origin`): either a flat TdGraph
// edge id or a shortcut record (link via a contracted middle node, or a
// merge of two parallel shortcuts). Journey extraction replays records
// recursively to recover the exact flat node path.
//
// Boarding-cost convention: every path leaving station S starts with S's
// constant board edge, so a shortcut whose tail is a station folds T(S)
// into its TTF ("shifted" form: a connection departing the route node at D
// with arrival A becomes the point (D - T(S), A - D + T(S))). The engines
// undo the fold at the query source — the model's free first boarding —
// by evaluating source shortcuts at t - T(S); board_shift() exposes the
// per-station constant.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "graph/td_graph.hpp"
#include "graph/ttf_pool.hpp"
#include "timetable/timetable.hpp"

namespace pconn {

/// rank() of nodes that were never contracted.
constexpr std::uint32_t kCoreRank = std::numeric_limits<std::uint32_t>::max();

/// Preprocessing-side counters of one contraction run (bench reporting).
struct ContractionStats {
  std::uint32_t contracted = 0;      // route nodes removed from the core
  std::uint32_t frozen = 0;          // route nodes kept in the core (caps)
  std::uint32_t rounds = 0;          // parallel batch rounds
  std::uint64_t shortcuts = 0;       // shortcut edges in the final overlay
  std::uint64_t merges = 0;          // parallel shortcuts folded by TTF merge
  std::uint64_t witness_dropped = 0; // candidate pairs killed by a witness
  std::uint64_t witness_searches = 0;
  double time_ms = 0.0;
};

class OverlayGraph {
 public:
  using EdgeId = std::uint32_t;

  /// `origin` values with this bit reference a shortcut record; without it
  /// they are flat TdGraph edge ids.
  static constexpr std::uint32_t kShortcutBit = 1u << 31;

  /// Provenance of one shortcut edge. `mid != kInvalidNode`: a link — legs
  /// `a` (tail -> mid) then `b` (mid -> head). `mid == kInvalidNode`: a
  /// merge — the TTF is the pointwise min of branches `a` and `b`, and the
  /// branch actually ridden is decided per departure time by evaluating
  /// both words. `word` is this shortcut's own packed pool entry (used to
  /// evaluate a branch without expanding it).
  struct ShortcutRec {
    std::uint32_t word;
    NodeId mid;
    std::uint32_t a, b;
  };

  // --- topology ---------------------------------------------------------
  NodeId num_nodes() const { return static_cast<NodeId>(rank_.size()); }
  std::size_t num_edges() const { return heads_.size(); }
  std::size_t num_stations() const { return num_stations_; }
  std::size_t num_core_nodes() const { return num_core_; }
  Time period() const { return period_; }

  bool is_core(NodeId v) const { return rank_[v] == kCoreRank; }
  std::uint32_t rank(NodeId v) const { return rank_[v]; }
  bool is_station_node(NodeId v) const { return v < num_stations_; }
  NodeId station_node(StationId s) const { return s; }
  /// T(S) folded into every shortcut leaving station s (see header note).
  Time board_shift(StationId s) const { return board_shift_[s]; }

  // --- SoA access (same shape as TdGraph; the relax loops stream these) --
  EdgeId edge_begin(NodeId v) const { return edge_begin_[v]; }
  EdgeId edge_end(NodeId v) const { return edge_begin_[v + 1]; }
  NodeId edge_head(EdgeId e) const { return heads_[e]; }
  std::uint32_t edge_word(EdgeId e) const { return words_[e]; }
  std::uint32_t edge_origin(EdgeId e) const { return origins_[e]; }
  const NodeId* heads_data() const { return heads_.data(); }
  const std::uint32_t* words_data() const { return words_.data(); }

  const TtfPool& ttfs() const { return ttfs_; }
  /// Functions [0, num_base_ttfs) are the base pool copied verbatim, so
  /// flat edge words evaluate unchanged against this pool.
  std::uint32_t num_base_ttfs() const { return num_base_ttfs_; }
  /// Edge count of the base graph this overlay was contracted from: the
  /// range flat-edge origins index (serialization validates against it,
  /// the engine constructors assert it matches the graph they are given).
  std::uint32_t num_base_edges() const { return num_base_edges_; }

  Time arrival_by_word(std::uint32_t w, Time t) const {
    if (TdGraph::word_is_const(w)) return t + TdGraph::word_weight(w);
    return ttfs_.arrival(w, t);
  }
  void arrivals_by_words(const std::uint32_t* words, std::size_t n, Time t,
                         Time* out) const {
    ttfs_.arrival_n(words, n, t, out);
  }
  std::uint32_t max_out_degree() const { return max_out_degree_; }
  std::uint32_t ttf_out_degree(NodeId v) const { return ttf_out_degree_[v]; }
  void prefetch_edge_ttf(EdgeId e) const {
    const std::uint32_t w = words_[e];
    if (!TdGraph::word_is_const(w)) ttfs_.prefetch_points(w);
  }

  // --- shortcut provenance ----------------------------------------------
  std::size_t num_shortcuts() const { return shortcuts_.size(); }
  const ShortcutRec& shortcut(std::uint32_t id) const { return shortcuts_[id]; }
  static bool origin_is_shortcut(std::uint32_t o) {
    return (o & kShortcutBit) != 0;
  }

  /// Dense key of an origin value in the provenance reverse index: flat
  /// edge ids map to themselves, shortcut records to num_base_edges() +
  /// record id. One contiguous key space so the index is a plain CSR.
  std::uint32_t origin_key(std::uint32_t o) const {
    return origin_is_shortcut(o) ? num_base_edges_ + (o & ~kShortcutBit) : o;
  }
  std::uint32_t num_origin_keys() const {
    return num_base_edges_ + static_cast<std::uint32_t>(shortcuts_.size());
  }

  /// Reverse edge of the shortcut provenance DAG: for each origin key, the
  /// shortcut records with that origin as their `a` or `b` leg. The
  /// incremental re-linker (algo/contraction.hpp) seeds a traversal at the
  /// flat edges a delay event changed and closes over dependents to find
  /// every shortcut TTF that must be recomputed; everything outside the
  /// closure is spliced into the new epoch verbatim (src/live/).
  struct ProvenanceIndex {
    std::vector<std::uint32_t> begin;  // num_origin_keys() + 1
    std::vector<std::uint32_t> recs;   // dependent shortcut record ids
    std::span<const std::uint32_t> dependents(std::uint32_t key) const {
      return {recs.data() + begin[key], begin[key + 1] - begin[key]};
    }
  };
  /// Builds the reverse index by counting sort over the records — O(edges +
  /// records), no per-key allocation. Records reference only earlier
  /// records (validated on load), so dependents of key k all have id > k's
  /// record when k is itself a shortcut.
  ProvenanceIndex build_provenance_index() const;

  // --- downward sweep (contracted nodes, descending rank) ----------------
  std::size_t num_contracted() const { return down_node_.size(); }
  NodeId down_node(std::size_t i) const { return down_node_[i]; }
  std::uint32_t down_begin(std::size_t i) const { return down_begin_[i]; }
  std::uint32_t down_end(std::size_t i) const { return down_begin_[i + 1]; }
  NodeId down_tail(std::uint32_t e) const { return down_tails_[e]; }
  std::uint32_t down_word(std::uint32_t e) const { return down_words_[e]; }

  /// down_pos(v) of nodes that are core (never swept).
  static constexpr std::uint32_t kNoDownPos =
      std::numeric_limits<std::uint32_t>::max();
  /// Inverse of down_node(): v's position in the down-sweep order, or
  /// kNoDownPos for core nodes. Built once at finalize (contraction and
  /// deserialization both), so every sweeping engine — the per-query
  /// settle_contracted, the multi-query cross-lane sweep, the partitioned
  /// SPCS sweep — shares one map instead of each building its own.
  std::uint32_t down_pos(NodeId v) const { return down_pos_[v]; }

  const ContractionStats& build_stats() const { return build_stats_; }

  /// Overlay footprint in bytes: CSRs, provenance and the pooled TTFs.
  std::size_t memory_bytes() const;
  /// Shortcut-only share of the pool's points (bench reporting).
  std::size_t shortcut_points() const;

 private:
  friend class ContractionBuilder;           // algo/contraction.cpp
  friend class OverlayRelinker;              // algo/contraction.cpp (re-link)
  friend void save_overlay(const OverlayGraph&, std::ostream&);
  friend OverlayGraph load_overlay(std::istream&);

  /// Derives down_pos_ from down_node_; the two construction paths
  /// (ContractionBuilder::assemble, load_overlay) call it after the down
  /// arrays are final.
  void build_down_pos();

  std::size_t num_stations_ = 0;
  std::size_t num_core_ = 0;
  Time period_ = kDayseconds;
  std::uint32_t max_out_degree_ = 0;
  std::uint32_t num_base_ttfs_ = 0;
  std::uint32_t num_base_edges_ = 0;
  std::vector<std::uint32_t> rank_;           // per node; kCoreRank = core
  std::vector<Time> board_shift_;             // per station: T(S)
  std::vector<std::uint32_t> edge_begin_;     // unified out-CSR, n+1
  std::vector<NodeId> heads_;
  std::vector<std::uint32_t> words_;          // packed const-or-ttf words
  std::vector<std::uint32_t> origins_;        // flat edge id | shortcut rec
  std::vector<std::uint8_t> ttf_out_degree_;  // per node, saturated at 255
  std::vector<ShortcutRec> shortcuts_;
  std::vector<NodeId> down_node_;             // contracted, descending rank
  std::vector<std::uint32_t> down_begin_;     // |down_node_| + 1
  std::vector<NodeId> down_tails_;
  std::vector<std::uint32_t> down_words_;
  std::vector<std::uint32_t> down_pos_;       // per node; kNoDownPos = core
  TtfPool ttfs_;
  ContractionStats build_stats_;
};

}  // namespace pconn
