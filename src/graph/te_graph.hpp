// The realistic time-expanded model — the competing modeling approach the
// paper discusses ([7], [23]): every timetable *event* becomes a node and
// all edge weights are plain constants, trading graph size for simplicity.
//
// Per station:
//  * one *transfer node* per distinct departure time, chained cyclically by
//    waiting edges;
//  * one *departure event* per elementary connection, entered from the
//    transfer node of its departure time (weight 0);
//  * one *arrival event* per elementary connection, with
//      - a stay-seated edge to the same trip's next departure event, and
//      - an off-train edge to the first transfer node reachable after
//        waiting out the station's transfer time T(S).
//
// Semantics note: unlike the time-dependent route model, changing between
// trips of the same route costs T(S) here (you must go through a transfer
// node). Earliest arrivals therefore satisfy TD <= TE, with equality
// whenever no same-route overtaking switch is profitable; the test suite
// exploits both facts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "timetable/timetable.hpp"

namespace pconn {

class TeGraph {
 public:
  enum class NodeKind : std::uint8_t { kTransfer, kDeparture, kArrival };

  struct Node {
    StationId station;
    Time time;  // in [0, period)
    NodeKind kind;
  };

  struct Edge {
    NodeId head;
    Time weight;  // fixed duration
  };

  static TeGraph build(const Timetable& tt);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return edges_.size(); }
  Time period() const { return period_; }
  const Node& node(NodeId v) const { return nodes_[v]; }

  std::span<const Edge> out_edges(NodeId v) const {
    return {edges_.data() + edge_begin_[v], edges_.data() + edge_begin_[v + 1]};
  }

  /// Transfer nodes of a station, ordered by time (query entry points).
  std::span<const NodeId> transfer_nodes(StationId s) const {
    return {transfer_by_station_.data() + transfer_begin_[s],
            transfer_by_station_.data() + transfer_begin_[s + 1]};
  }

  /// Arrival events at a station (query exit points).
  std::span<const NodeId> arrival_nodes(StationId s) const {
    return {arrival_by_station_.data() + arrival_begin_[s],
            arrival_by_station_.data() + arrival_begin_[s + 1]};
  }

  /// First transfer node of `s` departing at or after absolute time t,
  /// with the waiting duration; kInvalidNode if the station has none.
  std::pair<NodeId, Time> entry_node(StationId s, Time t) const;

  std::size_t memory_bytes() const;

 private:
  Time period_ = kDayseconds;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> edge_begin_;
  std::vector<Edge> edges_;
  std::vector<std::uint32_t> transfer_begin_, arrival_begin_;
  std::vector<NodeId> transfer_by_station_, arrival_by_station_;
};

}  // namespace pconn
