// The realistic time-dependent model (Pyrga et al. [23], paper Section 2).
//
// For every station a *station node*; for every route and every position
// along that route a *route node*. Edges:
//   * board:  station  -> route node, constant weight T(S) (transfer time);
//   * alight: route node -> station, constant weight 0;
//   * travel: route node -> next route node of the same route, a
//     time-dependent Ttf holding one connection point per trip.
// Transfers between trains therefore cost exactly T(S); staying seated is
// free. Query algorithms that start at a station S skip the boarding cost
// at S itself (the paper's SPCS starts directly on route nodes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/ttf.hpp"
#include "timetable/timetable.hpp"

namespace pconn {

constexpr std::uint32_t kNoTtf = std::numeric_limits<std::uint32_t>::max();

class TdGraph {
 public:
  struct Edge {
    NodeId head;
    std::uint32_t ttf;  // kNoTtf => constant `weight`
    Time weight;        // used only when ttf == kNoTtf
  };

  static TdGraph build(const Timetable& tt);

  NodeId num_nodes() const { return static_cast<NodeId>(station_of_.size()); }
  std::size_t num_edges() const { return edges_.size(); }
  std::size_t num_stations() const { return num_stations_; }
  Time period() const { return period_; }

  bool is_station_node(NodeId v) const { return v < num_stations_; }
  /// st(u): the station a node belongs to.
  StationId station_of(NodeId v) const { return station_of_[v]; }
  NodeId station_node(StationId s) const { return s; }
  NodeId route_node(RouteId r, std::uint32_t pos) const {
    return route_node_begin_[r] + pos;
  }
  /// The route node an elementary connection departs from.
  NodeId departure_node(const Timetable& tt, const Connection& c) const {
    return route_node(tt.trip(c.train).route, c.pos);
  }

  std::span<const Edge> out_edges(NodeId v) const {
    return {edges_.data() + edge_begin_[v], edges_.data() + edge_begin_[v + 1]};
  }

  const Ttf& ttf(std::uint32_t idx) const { return ttfs_[idx]; }

  /// Absolute arrival at e.head when reaching the tail at absolute time t.
  Time arrival_via(const Edge& e, Time t) const {
    if (e.ttf == kNoTtf) return t + e.weight;
    return ttfs_[e.ttf].arrival(t);
  }

  /// Rough memory footprint of the structure in bytes (bench reporting).
  std::size_t memory_bytes() const;

 private:
  std::size_t num_stations_ = 0;
  Time period_ = kDayseconds;
  std::vector<StationId> station_of_;          // per node
  std::vector<NodeId> route_node_begin_;       // per route
  std::vector<std::uint32_t> edge_begin_;      // CSR offsets, num_nodes()+1
  std::vector<Edge> edges_;
  std::vector<Ttf> ttfs_;
};

}  // namespace pconn
