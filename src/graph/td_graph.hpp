// The realistic time-dependent model (Pyrga et al. [23], paper Section 2).
//
// For every station a *station node*; for every route and every position
// along that route a *route node*. Edges:
//   * board:  station  -> route node, constant weight T(S) (transfer time);
//   * alight: route node -> station, constant weight 0;
//   * travel: route node -> next route node of the same route, a
//     time-dependent Ttf holding one connection point per trip.
// Transfers between trains therefore cost exactly T(S); staying seated is
// free. Query algorithms that start at a station S skip the boarding cost
// at S itself (the paper's SPCS starts directly on route nodes).
//
// Storage is structure-of-arrays, tuned for the relax loop (the system's
// hottest code): per edge only a 4-byte head and a 4-byte packed
// ttf-or-weight word (top bit set = constant weight in the low 31 bits,
// else a TtfPool index), so an edge block streams at 8 bytes/edge instead
// of the seed's 12-byte AoS records, and the head array can be walked —
// and prefetched — without touching weights. All travel-time functions
// live in one TtfPool (graph/ttf_pool.hpp): contiguous points plus an O(1)
// bucket-indexed eval that replaces the per-relax binary search. The
// `Edge` struct survives as a decoded per-edge view so non-hot callers and
// tests keep the familiar `for (const TdGraph::Edge& e : g.out_edges(v))`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/ttf_pool.hpp"
#include "timetable/timetable.hpp"

namespace pconn {

constexpr std::uint32_t kNoTtf = std::numeric_limits<std::uint32_t>::max();

class TdGraph {
 public:
  using EdgeId = std::uint32_t;

  /// Decoded view of one edge (storage is SoA; this is assembled on
  /// access). Field semantics match the seed AoS record: ttf == kNoTtf
  /// means a constant `weight`, otherwise `ttf` indexes the pool and
  /// weight is 0.
  struct Edge {
    NodeId head;
    std::uint32_t ttf;
    Time weight;
  };

  // --- packed ttf-or-weight word ----------------------------------------
  // The encoding is shared with TtfPool::arrival_n, whose batch kernel
  // evaluates constant words inline.
  static constexpr std::uint32_t kConstFlag = TtfPool::kConstFlag;
  static bool word_is_const(std::uint32_t w) { return (w & kConstFlag) != 0; }
  static Time word_weight(std::uint32_t w) {
    return static_cast<Time>(w & ~kConstFlag);
  }
  static std::uint32_t word_ttf(std::uint32_t w) { return w; }

  static TdGraph build(const Timetable& tt);
  /// Build with an explicit per-network TTF-index configuration (memory /
  /// eval-speed knob, see TtfIndexOptions). Results are bit-identical for
  /// any configuration; only index memory and scan lengths change.
  static TdGraph build(const Timetable& tt, const TtfIndexOptions& idx);

  NodeId num_nodes() const { return static_cast<NodeId>(station_of_.size()); }
  std::size_t num_edges() const { return heads_.size(); }
  std::size_t num_stations() const { return num_stations_; }
  Time period() const { return period_; }

  bool is_station_node(NodeId v) const { return v < num_stations_; }
  /// st(u): the station a node belongs to.
  StationId station_of(NodeId v) const { return station_of_[v]; }
  NodeId station_node(StationId s) const { return s; }
  NodeId route_node(RouteId r, std::uint32_t pos) const {
    return route_node_begin_[r] + pos;
  }
  /// The route node an elementary connection departs from.
  NodeId departure_node(const Timetable& tt, const Connection& c) const {
    return route_node(tt.trip(c.train).route, c.pos);
  }

  // --- SoA access (the relax loops stream these directly) ---------------
  EdgeId edge_begin(NodeId v) const { return edge_begin_[v]; }
  EdgeId edge_end(NodeId v) const { return edge_begin_[v + 1]; }
  NodeId edge_head(EdgeId e) const { return heads_[e]; }
  std::uint32_t edge_word(EdgeId e) const { return ttf_or_weight_[e]; }
  const NodeId* heads_data() const { return heads_.data(); }
  const std::uint32_t* words_data() const { return ttf_or_weight_.data(); }

  const TtfPool& ttfs() const { return ttfs_; }

  /// Absolute arrival via a packed ttf-or-weight word when reaching the
  /// tail at absolute time t — the interleaved relax-loop entry point.
  Time arrival_by_word(std::uint32_t w, Time t) const {
    if (word_is_const(w)) return t + word_weight(w);
    return ttfs_.arrival(word_ttf(w), t);
  }
  /// Batched variant for the gather -> eval -> commit relax loops: arrivals
  /// via words[0..n) for one entry time, constant words evaluated inline
  /// (vectorized; see TtfPool::arrival_n).
  void arrivals_by_words(const std::uint32_t* words, std::size_t n, Time t,
                         Time* out) const {
    ttfs_.arrival_n(words, n, t, out);
  }
  /// Largest out-degree of any node — the capacity bound the engines'
  /// batch buffers reserve once so warm queries never reallocate.
  std::uint32_t max_out_degree() const { return max_out_degree_; }
  /// Time-dependent (non-constant) edges in v's block, saturated at 255 —
  /// the relax loops' batch-profitability test: a block whose TTF fan-out
  /// is below the batch threshold runs interleaved (constant words cost a
  /// single add either way, so only TTF evals justify the phased loop).
  std::uint32_t ttf_out_degree(NodeId v) const { return ttf_out_degree_[v]; }
  /// Prefetch hint for edge e's travel-time points (no-op on constant
  /// edges: the weight is already in the streamed word).
  void prefetch_edge_ttf(EdgeId e) const {
    const std::uint32_t w = ttf_or_weight_[e];
    if (!word_is_const(w)) ttfs_.prefetch_points(word_ttf(w));
  }

  // --- decoded compat view ----------------------------------------------
  Edge edge(EdgeId e) const {
    const std::uint32_t w = ttf_or_weight_[e];
    if (word_is_const(w)) return {heads_[e], kNoTtf, word_weight(w)};
    return {heads_[e], word_ttf(w), 0};
  }

  class EdgeIterator {
   public:
    EdgeIterator(const TdGraph* g, EdgeId e) : g_(g), e_(e) {}
    Edge operator*() const { return g_->edge(e_); }
    EdgeIterator& operator++() {
      ++e_;
      return *this;
    }
    bool operator!=(const EdgeIterator& o) const { return e_ != o.e_; }
    bool operator==(const EdgeIterator& o) const { return e_ == o.e_; }

   private:
    const TdGraph* g_;
    EdgeId e_;
  };
  struct EdgeRange {
    EdgeIterator first, last;
    EdgeIterator begin() const { return first; }
    EdgeIterator end() const { return last; }
  };
  EdgeRange out_edges(NodeId v) const {
    return {EdgeIterator(this, edge_begin(v)), EdgeIterator(this, edge_end(v))};
  }

  /// Absolute arrival at e.head when reaching the tail at absolute time t
  /// (compat overload for the decoded view).
  Time arrival_via(const Edge& e, Time t) const {
    if (e.ttf == kNoTtf) return t + e.weight;
    return ttfs_.arrival(e.ttf, t);
  }

  /// Rough memory footprint of the structure in bytes (bench reporting).
  std::size_t memory_bytes() const;

 private:
  std::size_t num_stations_ = 0;
  Time period_ = kDayseconds;
  std::uint32_t max_out_degree_ = 0;
  std::vector<StationId> station_of_;       // per node
  std::vector<NodeId> route_node_begin_;    // per route
  std::vector<std::uint32_t> edge_begin_;   // CSR offsets, num_nodes()+1
  std::vector<NodeId> heads_;               // per edge
  std::vector<std::uint32_t> ttf_or_weight_;  // per edge, packed (see top)
  std::vector<std::uint8_t> ttf_out_degree_;  // per node, saturated at 255
  TtfPool ttfs_;
};

}  // namespace pconn
