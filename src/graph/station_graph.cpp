#include "graph/station_graph.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace pconn {

StationGraph StationGraph::build(const Timetable& tt) {
  // Aggregate elementary connections per ordered station pair.
  struct Agg {
    Time min_ride;
    std::uint32_t num_conns;
  };
  std::map<std::pair<StationId, StationId>, Agg> agg;
  for (const Connection& c : tt.connections()) {
    auto key = std::make_pair(c.from, c.to);
    auto it = agg.find(key);
    if (it == agg.end()) {
      agg.emplace(key, Agg{c.duration(), 1});
    } else {
      it->second.min_ride = std::min(it->second.min_ride, c.duration());
      it->second.num_conns++;
    }
  }

  StationGraph g;
  const std::size_t n = tt.num_stations();
  g.fwd_begin_.assign(n + 1, 0);
  g.rev_begin_.assign(n + 1, 0);
  for (const auto& [key, e] : agg) {
    g.fwd_begin_[key.first + 1]++;
    g.rev_begin_[key.second + 1]++;
  }
  std::partial_sum(g.fwd_begin_.begin(), g.fwd_begin_.end(),
                   g.fwd_begin_.begin());
  std::partial_sum(g.rev_begin_.begin(), g.rev_begin_.end(),
                   g.rev_begin_.begin());
  const std::size_t m = g.fwd_begin_.back();
  g.fwd_head_.resize(m);
  g.fwd_min_ride_.resize(m);
  g.fwd_num_conns_.resize(m);
  g.rev_head_.resize(m);
  g.rev_min_ride_.resize(m);
  g.rev_num_conns_.resize(m);
  std::vector<std::uint32_t> fpos(g.fwd_begin_.begin(), g.fwd_begin_.end() - 1);
  std::vector<std::uint32_t> rpos(g.rev_begin_.begin(), g.rev_begin_.end() - 1);
  for (const auto& [key, e] : agg) {
    const std::uint32_t f = fpos[key.first]++;
    g.fwd_head_[f] = key.second;
    g.fwd_min_ride_[f] = e.min_ride;
    g.fwd_num_conns_[f] = e.num_conns;
    const std::uint32_t r = rpos[key.second]++;
    g.rev_head_[r] = key.first;  // reverse edge points back to the tail
    g.rev_min_ride_[r] = e.min_ride;
    g.rev_num_conns_[r] = e.num_conns;
  }
  return g;
}

std::size_t StationGraph::degree(StationId s) const {
  std::set<StationId> neigh;
  for (StationId v : out_heads(s)) neigh.insert(v);
  for (StationId v : in_heads(s)) neigh.insert(v);
  return neigh.size();
}

std::size_t StationGraph::memory_bytes() const {
  return (fwd_begin_.size() + rev_begin_.size()) * sizeof(std::uint32_t) +
         (fwd_head_.size() + rev_head_.size()) * sizeof(StationId) +
         (fwd_min_ride_.size() + rev_min_ride_.size()) * sizeof(Time) +
         (fwd_num_conns_.size() + rev_num_conns_.size()) *
             sizeof(std::uint32_t);
}

}  // namespace pconn
