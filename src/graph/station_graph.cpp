#include "graph/station_graph.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace pconn {

StationGraph StationGraph::build(const Timetable& tt) {
  // Aggregate elementary connections per ordered station pair.
  std::map<std::pair<StationId, StationId>, Edge> agg;
  for (const Connection& c : tt.connections()) {
    auto key = std::make_pair(c.from, c.to);
    auto it = agg.find(key);
    if (it == agg.end()) {
      agg.emplace(key, Edge{c.to, c.duration(), 1});
    } else {
      it->second.min_ride = std::min(it->second.min_ride, c.duration());
      it->second.num_conns++;
    }
  }

  StationGraph g;
  const std::size_t n = tt.num_stations();
  g.fwd_begin_.assign(n + 1, 0);
  g.rev_begin_.assign(n + 1, 0);
  for (const auto& [key, e] : agg) {
    g.fwd_begin_[key.first + 1]++;
    g.rev_begin_[key.second + 1]++;
  }
  std::partial_sum(g.fwd_begin_.begin(), g.fwd_begin_.end(),
                   g.fwd_begin_.begin());
  std::partial_sum(g.rev_begin_.begin(), g.rev_begin_.end(),
                   g.rev_begin_.begin());
  g.fwd_.resize(g.fwd_begin_.back());
  g.rev_.resize(g.rev_begin_.back());
  std::vector<std::uint32_t> fpos(g.fwd_begin_.begin(), g.fwd_begin_.end() - 1);
  std::vector<std::uint32_t> rpos(g.rev_begin_.begin(), g.rev_begin_.end() - 1);
  for (const auto& [key, e] : agg) {
    g.fwd_[fpos[key.first]++] = e;
    Edge rev_edge = e;
    rev_edge.head = key.first;  // reverse edge points back to the tail
    g.rev_[rpos[key.second]++] = rev_edge;
  }
  return g;
}

std::size_t StationGraph::degree(StationId s) const {
  std::set<StationId> neigh;
  for (const Edge& e : out_edges(s)) neigh.insert(e.head);
  for (const Edge& e : in_edges(s)) neigh.insert(e.head);
  return neigh.size();
}

}  // namespace pconn
