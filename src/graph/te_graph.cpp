#include "graph/te_graph.hpp"

#include <algorithm>
#include <numeric>

namespace pconn {

namespace {

/// First element of `times` (sorted, cyclic) at or after `target`; returns
/// its index and the wait from `target`.
std::pair<std::size_t, Time> next_cyclic(const std::vector<Time>& times,
                                         Time target, Time period) {
  auto it = std::lower_bound(times.begin(), times.end(), target);
  if (it == times.end()) {
    return {0, period - target + times.front()};
  }
  return {static_cast<std::size_t>(it - times.begin()), *it - target};
}

}  // namespace

TeGraph TeGraph::build(const Timetable& tt) {
  TeGraph g;
  g.period_ = tt.period();
  const std::size_t ns = tt.num_stations();

  // Transfer nodes: one per distinct departure time per station.
  std::vector<std::vector<Time>> dep_times(ns);
  for (StationId s = 0; s < ns; ++s) {
    for (const Connection& c : tt.outgoing(s)) {
      if (dep_times[s].empty() || dep_times[s].back() != c.dep) {
        dep_times[s].push_back(c.dep);
      }
    }
  }

  std::vector<std::vector<NodeId>> transfer(ns);
  g.transfer_begin_.assign(ns + 1, 0);
  for (StationId s = 0; s < ns; ++s) {
    for (Time t : dep_times[s]) {
      transfer[s].push_back(static_cast<NodeId>(g.nodes_.size()));
      g.nodes_.push_back({s, t, NodeKind::kTransfer});
    }
  }

  // Departure and arrival events per elementary connection; remember the
  // departure event of each (trip, position) for stay-seated edges.
  const auto& conns = tt.connections();
  std::vector<NodeId> dep_event(conns.size()), arr_event(conns.size());
  std::vector<std::vector<NodeId>> trip_dep(tt.num_trips());
  for (TrainId t = 0; t < tt.num_trips(); ++t) {
    trip_dep[t].assign(tt.route(tt.trip(t).route).stops.size(), kInvalidNode);
  }
  for (std::size_t i = 0; i < conns.size(); ++i) {
    const Connection& c = conns[i];
    dep_event[i] = static_cast<NodeId>(g.nodes_.size());
    g.nodes_.push_back({c.from, c.dep, NodeKind::kDeparture});
    arr_event[i] = static_cast<NodeId>(g.nodes_.size());
    g.nodes_.push_back({c.to, c.arr % tt.period(), NodeKind::kArrival});
    trip_dep[c.train][c.pos] = dep_event[i];
  }

  std::vector<std::vector<Edge>> adj(g.nodes_.size());

  // Waiting chain (cyclic) and boarding edges.
  for (StationId s = 0; s < ns; ++s) {
    const auto& chain = transfer[s];
    for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
      adj[chain[k]].push_back(
          {chain[k + 1], dep_times[s][k + 1] - dep_times[s][k]});
    }
    if (chain.size() > 1) {
      adj[chain.back()].push_back(
          {chain.front(), tt.period() - dep_times[s].back() + dep_times[s][0]});
    }
  }
  for (std::size_t i = 0; i < conns.size(); ++i) {
    const Connection& c = conns[i];
    auto [idx, wait] = next_cyclic(dep_times[c.from], c.dep, tt.period());
    // The departure's own time is a transfer node, so wait == 0.
    adj[transfer[c.from][idx]].push_back({dep_event[i], 0});
    // Ride edge.
    adj[dep_event[i]].push_back({arr_event[i], c.arr - c.dep});
  }

  // Stay-seated and off-train edges from every arrival event.
  for (std::size_t i = 0; i < conns.size(); ++i) {
    const Connection& c = conns[i];
    const Trip& trip = tt.trip(c.train);
    // Stay seated: dwell until the same trip departs from c.to.
    if (c.pos + 1 < trip_dep[c.train].size() &&
        trip_dep[c.train][c.pos + 1] != kInvalidNode) {
      Time dwell = trip.departures[c.pos + 1] - trip.arrivals[c.pos + 1];
      adj[arr_event[i]].push_back({trip_dep[c.train][c.pos + 1], dwell});
    }
    // Off-train: wait out T(S), then join the transfer chain.
    if (!dep_times[c.to].empty()) {
      Time ready = (c.arr + tt.transfer_time(c.to)) % tt.period();
      auto [idx, wait] = next_cyclic(dep_times[c.to], ready, tt.period());
      adj[arr_event[i]].push_back(
          {transfer[c.to][idx], tt.transfer_time(c.to) + wait});
    }
  }

  // Flatten to CSR.
  g.edge_begin_.assign(g.nodes_.size() + 1, 0);
  for (std::size_t v = 0; v < adj.size(); ++v) {
    g.edge_begin_[v + 1] = static_cast<std::uint32_t>(adj[v].size());
  }
  std::partial_sum(g.edge_begin_.begin(), g.edge_begin_.end(),
                   g.edge_begin_.begin());
  g.edges_.reserve(g.edge_begin_.back());
  for (auto& out : adj) g.edges_.insert(g.edges_.end(), out.begin(), out.end());

  // Station indexes.
  g.arrival_begin_.assign(ns + 1, 0);
  for (std::size_t i = 0; i < conns.size(); ++i) {
    g.arrival_begin_[conns[i].to + 1]++;
  }
  std::partial_sum(g.arrival_begin_.begin(), g.arrival_begin_.end(),
                   g.arrival_begin_.begin());
  g.arrival_by_station_.resize(conns.size());
  {
    std::vector<std::uint32_t> pos(g.arrival_begin_.begin(),
                                   g.arrival_begin_.end() - 1);
    for (std::size_t i = 0; i < conns.size(); ++i) {
      g.arrival_by_station_[pos[conns[i].to]++] = arr_event[i];
    }
  }
  for (StationId s = 0; s < ns; ++s) {
    g.transfer_begin_[s + 1] =
        g.transfer_begin_[s] + static_cast<std::uint32_t>(transfer[s].size());
  }
  g.transfer_by_station_.reserve(g.transfer_begin_[ns]);
  for (StationId s = 0; s < ns; ++s) {
    g.transfer_by_station_.insert(g.transfer_by_station_.end(),
                                  transfer[s].begin(), transfer[s].end());
  }
  return g;
}

std::pair<NodeId, Time> TeGraph::entry_node(StationId s, Time t) const {
  auto chain = transfer_nodes(s);
  if (chain.empty()) return {kInvalidNode, kInfTime};
  Time tau = t % period_;
  // Transfer nodes are ordered by time; binary search the chain.
  auto it = std::lower_bound(
      chain.begin(), chain.end(), tau,
      [this](NodeId v, Time value) { return nodes_[v].time < value; });
  if (it == chain.end()) {
    return {chain.front(), period_ - tau + nodes_[chain.front()].time};
  }
  return {*it, nodes_[*it].time - tau};
}

std::size_t TeGraph::memory_bytes() const {
  return nodes_.size() * sizeof(Node) + edges_.size() * sizeof(Edge) +
         (edge_begin_.size() + transfer_begin_.size() +
          arrival_begin_.size()) *
             sizeof(std::uint32_t) +
         (transfer_by_station_.size() + arrival_by_station_.size()) *
             sizeof(NodeId);
}

}  // namespace pconn
