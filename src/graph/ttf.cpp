#include "graph/ttf.hpp"

#include <algorithm>
#include <cassert>

namespace pconn {

Ttf Ttf::build(std::vector<TtfPoint> points, Time period) {
  Ttf f;
  f.period_ = period;
  if (points.empty()) return f;
  for ([[maybe_unused]] const TtfPoint& p : points) assert(p.dep < period);

  std::sort(points.begin(), points.end(),
            [](const TtfPoint& a, const TtfPoint& b) {
              return a.dep != b.dep ? a.dep < b.dep : a.dur < b.dur;
            });
  // Unique departures: the fastest ride wins (sort order guarantees it
  // comes first).
  std::vector<TtfPoint> uniq;
  uniq.reserve(points.size());
  for (const TtfPoint& p : points) {
    if (!uniq.empty() && uniq.back().dep == p.dep) continue;
    uniq.push_back(p);
  }

  // Cyclic domination pruning: drop point i when waiting for the next kept
  // point j (possibly wrapping) arrives no later: Delta(dep_i, dep_j) +
  // dur_j <= dur_i. Backward circular sweeps until a fixpoint; each kept
  // point then transitively beats waiting for any later one, which makes
  // "take the next departure" the optimal policy and eval() O(log n).
  std::vector<bool> keep(uniq.size(), true);
  std::size_t kept = uniq.size();
  bool changed = true;
  while (changed && kept > 1) {
    changed = false;
    // next_kept[i]: first kept index cyclically after i.
    std::size_t next = std::size_t(-1);
    for (std::size_t i = 0; i < uniq.size(); ++i) {
      if (keep[i]) {
        next = i;
        break;
      }
    }
    for (std::size_t step = uniq.size(); step-- > 0 && kept > 1;) {
      std::size_t i = step;
      if (!keep[i]) continue;
      // Find the kept successor of i (cyclically). `next` tracks the first
      // kept point after the current one in this backward sweep.
      if (next == i) {
        // recompute: first kept after i
        std::size_t j = (i + 1) % uniq.size();
        while (!keep[j]) j = (j + 1) % uniq.size();
        next = j;
      }
      std::size_t j = next;
      if (j != i) {
        Time wait = delta(uniq[i].dep, uniq[j].dep, period);
        if (wait + uniq[j].dur <= uniq[i].dur) {
          keep[i] = false;
          --kept;
          changed = true;
        }
      }
      if (keep[i]) next = i;
    }
  }

  f.points_.reserve(kept);
  for (std::size_t i = 0; i < uniq.size(); ++i) {
    if (keep[i]) f.points_.push_back(uniq[i]);
  }
  return f;
}

std::size_t Ttf::point_used(Time t) const {
  assert(!points_.empty());
  Time tau = t % period_;
  // First departure >= tau; wraps to the first point of the next period.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), tau,
      [](const TtfPoint& p, Time v) { return p.dep < v; });
  if (it == points_.end()) it = points_.begin();
  return static_cast<std::size_t>(it - points_.begin());
}

Time Ttf::eval(Time t) const {
  if (points_.empty()) return kInfTime;
  const TtfPoint& p = points_[point_used(t)];
  return delta(t, p.dep, period_) + p.dur;
}

Time Ttf::min_duration() const {
  Time best = kInfTime;
  for (const TtfPoint& p : points_) best = std::min(best, p.dur);
  return best;
}

bool Ttf::is_fifo() const {
  // FIFO (cyclic): for all t1, t2: f(t1) <= Delta(t1, t2) + f(t2).
  // It suffices to test t1 at each departure point and t2 at every other
  // departure point, since f is affine (slope -1 in wait) between points.
  for (const TtfPoint& a : points_) {
    for (const TtfPoint& b : points_) {
      Time lhs = eval(a.dep);
      Time rhs = delta(a.dep, b.dep, period_) + eval(b.dep);
      if (lhs > rhs) return false;
    }
  }
  return true;
}

}  // namespace pconn
