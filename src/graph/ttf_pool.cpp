#include "graph/ttf_pool.hpp"

#include <algorithm>
#include <bit>

namespace pconn {

std::uint32_t TtfPool::add(const Ttf& f) {
  assert(f.period() == period_ || f.empty());
  const std::uint32_t idx = static_cast<std::uint32_t>(meta_.size());
  TtfMeta m;
  m.first = static_cast<std::uint32_t>(points_.size());
  m.count = static_cast<std::uint32_t>(f.size());
  m.bucket0 = static_cast<std::uint32_t>(bucket_idx_.size());
  points_.insert(points_.end(), f.points().begin(), f.points().end());

  // One bucket per point (rounded to a power of two, capped at 2^16): the
  // expected scan past the bucket entry is then <= 1 point. Empty
  // functions keep a single bucket so eval's index lookup stays branchless.
  const std::uint32_t buckets = static_cast<std::uint32_t>(std::min<std::size_t>(
      std::bit_ceil(std::max<std::size_t>(std::size_t{1}, f.size())),
      std::size_t{1} << 16));
  m.log2b = static_cast<std::uint32_t>(std::countr_zero(buckets));

  // bucket_idx_[b] = first point whose departure maps to bucket b or later
  // (two-pointer over the sorted departures; m.first + count when every
  // point maps earlier — the scan then wraps to the function's start).
  std::uint32_t i = 0;
  for (std::uint32_t b = 0; b < buckets; ++b) {
    while (i < m.count && bucket_of(f.points()[i].dep, m.log2b) < b) ++i;
    bucket_idx_.push_back(m.first + i);
  }
  meta_.push_back(m);
  return idx;
}

}  // namespace pconn
