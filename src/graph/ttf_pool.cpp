#include "graph/ttf_pool.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "util/simd.hpp"

namespace pconn {

TtfIndexOptions TtfIndexOptions::from_env() {
  TtfIndexOptions opt;
  if (const char* v = std::getenv("PCONN_TTF_BUCKET_DENSITY")) {
    opt.buckets_per_point = std::atof(v);
  }
  if (const char* v = std::getenv("PCONN_TTF_MIN_INDEXED")) {
    opt.min_indexed_points = static_cast<std::uint32_t>(std::atoi(v));
  }
  return opt;
}

std::uint32_t TtfPool::add(const Ttf& f) {
  assert(f.period() == period_ || f.empty());
  return add_raw(f.points());
}

std::uint32_t TtfPool::add_raw(std::span<const TtfPoint> pts) {
#ifndef NDEBUG
  for (std::size_t i = 0; i < pts.size(); ++i) {
    assert(pts[i].dep < period_);
    assert(i == 0 || pts[i - 1].dep < pts[i].dep);
  }
#endif
  // The AVX2 kernels gather metadata and points through signed 32-bit
  // lanes; both stay far below 2^29 entries on any real network.
  assert(meta_.size() < (std::size_t{1} << 29));
  assert(points_.size() + pts.size() < (std::size_t{1} << 29));
  const std::uint32_t idx = static_cast<std::uint32_t>(meta_.size());
  TtfMeta m;
  m.first = static_cast<std::uint32_t>(points_.size());
  m.count = static_cast<std::uint32_t>(pts.size());
  m.bucket0 = static_cast<std::uint32_t>(bucket_idx_.size());
  points_.insert(points_.end(), pts.begin(), pts.end());

  // Default density: one bucket per point (rounded to a power of two,
  // capped at 2^16) — the expected scan past the bucket entry is then <= 1
  // point. The index options scale the density per network and drop the
  // index for small functions: those (and empty ones) keep a single bucket
  // pointing at their first point, so eval's index lookup stays branchless
  // and the scan is the plain linear lower_bound.
  std::uint32_t buckets = 1;
  if (pts.size() >= idx_.min_indexed_points) {
    const double want = std::max(
        1.0, static_cast<double>(pts.size()) * idx_.buckets_per_point);
    buckets = static_cast<std::uint32_t>(std::min<std::size_t>(
        std::bit_ceil(static_cast<std::size_t>(want)), std::size_t{1} << 16));
  }
  m.log2b = static_cast<std::uint32_t>(std::countr_zero(buckets));

  // bucket_idx_[b] = first point whose departure maps to bucket b or later
  // (two-pointer over the sorted departures; m.first + count when every
  // point maps earlier — the scan then wraps to the function's start).
  std::uint32_t i = 0;
  for (std::uint32_t b = 0; b < buckets; ++b) {
    while (i < m.count && bucket_of(pts[i].dep, m.log2b) < b) ++i;
    bucket_idx_.push_back(m.first + i);
  }
  meta_.push_back(m);
  return idx;
}

void TtfPool::append_copy(const TtfPool& src, std::uint32_t begin,
                          std::uint32_t end) {
  assert(&src != this);
  assert(src.period_ == period_);
  assert(begin <= end && end <= src.meta_.size());
  if (begin == end) return;
  const TtfMeta& mb = src.meta_[begin];
  const TtfMeta& ml = src.meta_[end - 1];
  // Functions are laid out in add order, so [begin, end) occupies one
  // contiguous span in each of src's three arrays.
  const std::uint32_t pts_lo = mb.first;
  const std::uint32_t pts_hi = ml.first + ml.count;
  const std::uint32_t bkt_lo = mb.bucket0;
  const std::uint32_t bkt_hi = ml.bucket0 + (1u << ml.log2b);
  assert(points_.size() + (pts_hi - pts_lo) < (std::size_t{1} << 29));
  assert(meta_.size() + (end - begin) < (std::size_t{1} << 29));
  const std::uint32_t point_shift =
      static_cast<std::uint32_t>(points_.size()) - pts_lo;
  const std::uint32_t bucket_shift =
      static_cast<std::uint32_t>(bucket_idx_.size()) - bkt_lo;

  points_.insert(points_.end(), src.points_.begin() + pts_lo,
                 src.points_.begin() + pts_hi);
  // Bucket entries are absolute point indices; shift them as they land.
  bucket_idx_.reserve(bucket_idx_.size() + (bkt_hi - bkt_lo));
  for (std::uint32_t b = bkt_lo; b < bkt_hi; ++b) {
    bucket_idx_.push_back(src.bucket_idx_[b] + point_shift);
  }
  meta_.reserve(meta_.size() + (end - begin));
  for (std::uint32_t f = begin; f < end; ++f) {
    TtfMeta m = src.meta_[f];
    m.first += point_shift;
    m.bucket0 += bucket_shift;
    meta_.push_back(m);
  }
}

void TtfPool::arrival_n_scalar(const std::uint32_t* entries, std::size_t n,
                               Time t, Time* out) const {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      const std::uint32_t next = entries[i + 1];
      if (!(next & kConstFlag)) prefetch_points(next);
    }
    out[i] = arrival_entry(entries[i], t);
  }
}

void TtfPool::arrival_tn_scalar(std::uint32_t f, const Time* ts, std::size_t n,
                                Time* out) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = arrival(f, ts[i]);
}

void TtfPool::arrival_ptn_scalar(const std::uint32_t* entries, const Time* ts,
                                 std::size_t n, Time* out) const {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      const std::uint32_t next = entries[i + 1];
      if (!(next & kConstFlag)) prefetch_points(next);
    }
    out[i] = arrival_entry(entries[i], ts[i]);
  }
}

void TtfPool::arrival_tn_sorted(std::uint32_t f, const Time* ts, std::size_t n,
                                Time* out) const {
  arrival_tn_sorted_fused(
      f, n, [ts](std::size_t i) { return ts[i]; },
      [out](std::size_t i, Time a) { out[i] = a; });
}

#if PCONN_HAVE_AVX2_DISPATCH

// Both kernels share the bucket-mapping identity
//   bucket_of(tau, b) = ((tau << b) * inv) >> 32 = (tau * inv) >> (32 - b)
// with tau * inv < 2^32 (tau < period, inv = floor(2^32 / period)), so the
// per-lane bucket is a 32-bit multiply plus a variable shift — no division
// anywhere. All comparisons run in signed 32-bit lanes, which is safe
// because times stay below 2^30 (asserted in reset) and pool indices below
// 2^29 (asserted in add).

[[gnu::target("avx2")]] void TtfPool::arrival_n_avx2(
    const std::uint32_t* entries, std::size_t n, Time t, Time* out) const {
  const std::uint32_t tau = t % period_;
  const std::uint32_t tau_inv = static_cast<std::uint32_t>(tau * inv_period_);
  const int* const meta_base = reinterpret_cast<const int*>(meta_.data());
  const int* const bidx_base = reinterpret_cast<const int*>(bucket_idx_.data());
  const int* const pts_base = reinterpret_cast<const int*>(points_.data());

  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vtau = _mm256_set1_epi32(static_cast<int>(tau));
  const __m256i vtau_inv = _mm256_set1_epi32(static_cast<int>(tau_inv));
  const __m256i v32 = _mm256_set1_epi32(32);
  const __m256i vperiod = _mm256_set1_epi32(static_cast<int>(period_));
  const __m256i vt = _mm256_set1_epi32(static_cast<int>(t));
  const __m256i vinf = _mm256_set1_epi32(static_cast<int>(kInfTime));
  const __m256i vconst = _mm256_set1_epi32(static_cast<int>(kConstFlag));

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(entries + i));
    // Lanes with the top bit set carry an inline constant; every gather is
    // masked to the TTF lanes (and, for points, to non-empty functions) so
    // no lane ever reads outside the pool arrays.
    const __m256i is_const = _mm256_srai_epi32(w, 31);
    const __m256i is_ttf = _mm256_cmpeq_epi32(is_const, vzero);
    const __m256i f4 = _mm256_slli_epi32(_mm256_andnot_si256(is_const, w), 2);
    const __m256i first =
        _mm256_mask_i32gather_epi32(vzero, meta_base + 0, f4, is_ttf, 4);
    const __m256i count =
        _mm256_mask_i32gather_epi32(vzero, meta_base + 1, f4, is_ttf, 4);
    const __m256i bucket0 =
        _mm256_mask_i32gather_epi32(vzero, meta_base + 2, f4, is_ttf, 4);
    const __m256i log2b =
        _mm256_mask_i32gather_epi32(vzero, meta_base + 3, f4, is_ttf, 4);
    const __m256i bucket =
        _mm256_srlv_epi32(vtau_inv, _mm256_sub_epi32(v32, log2b));
    const __m256i live =
        _mm256_andnot_si256(_mm256_cmpeq_epi32(count, vzero), is_ttf);
    __m256i pos = _mm256_mask_i32gather_epi32(
        vzero, bidx_base, _mm256_add_epi32(bucket0, bucket), live, 4);
    const __m256i end = _mm256_add_epi32(first, count);
    // Linear lower_bound past the bucket entry: lanes advance while their
    // point departs before tau; the default of tau for masked-off lanes
    // stops them immediately. Expected 0-1 iterations at default density.
    for (;;) {
      const __m256i in_range =
          _mm256_and_si256(_mm256_cmpgt_epi32(end, pos), live);
      if (_mm256_testz_si256(in_range, in_range)) break;
      const __m256i dep = _mm256_mask_i32gather_epi32(
          vtau, pts_base, _mm256_slli_epi32(pos, 1), in_range, 4);
      const __m256i advance =
          _mm256_and_si256(in_range, _mm256_cmpgt_epi32(vtau, dep));
      if (_mm256_testz_si256(advance, advance)) break;
      pos = _mm256_sub_epi32(pos, advance);  // advance lanes hold -1
    }
    // Lanes that scanned to their function's end wrap to its first point.
    pos = _mm256_blendv_epi8(first, pos, _mm256_cmpgt_epi32(end, pos));
    const __m256i p2 = _mm256_slli_epi32(pos, 1);
    const __m256i dep =
        _mm256_mask_i32gather_epi32(vzero, pts_base + 0, p2, live, 4);
    const __m256i dur =
        _mm256_mask_i32gather_epi32(vzero, pts_base + 1, p2, live, 4);
    const __m256i wrap = _mm256_cmpgt_epi32(vtau, dep);
    const __m256i wait = _mm256_add_epi32(_mm256_sub_epi32(dep, vtau),
                                          _mm256_and_si256(wrap, vperiod));
    __m256i res = _mm256_add_epi32(vt, _mm256_add_epi32(wait, dur));
    res = _mm256_blendv_epi8(vinf, res, live);  // empty functions
    const __m256i cres = _mm256_add_epi32(vt, _mm256_andnot_si256(vconst, w));
    res = _mm256_blendv_epi8(res, cres, is_const);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), res);
  }
  arrival_n_scalar(entries + i, n - i, t, out + i);
}

namespace {

/// Per-32-bit-lane high half of the unsigned product a*b.
[[gnu::target("avx2")]] inline __m256i mul_hi_epu32(__m256i a, __m256i b) {
  const __m256i even = _mm256_srli_epi64(_mm256_mul_epu32(a, b), 32);
  const __m256i odd = _mm256_mul_epu32(_mm256_srli_epi64(a, 32),
                                       _mm256_srli_epi64(b, 32));
  // even holds lanes 0,2,.. in the low 64-bit halves; odd's products sit
  // with their high 32 bits exactly in the odd lane positions.
  return _mm256_blend_epi32(even, odd, 0b10101010);
}

}  // namespace

[[gnu::target("avx2")]] void TtfPool::arrival_tn_avx2(std::uint32_t f,
                                                      const Time* ts,
                                                      std::size_t n,
                                                      Time* out) const {
  const TtfMeta& m = meta_[f];
  if (m.count == 0) {
    std::fill(out, out + n, kInfTime);
    return;
  }
  const int* const bidx_base = reinterpret_cast<const int*>(bucket_idx_.data());
  const int* const pts_base = reinterpret_cast<const int*>(points_.data());
  const std::uint32_t inv32 = static_cast<std::uint32_t>(inv_period_);

  const __m256i vinv = _mm256_set1_epi32(static_cast<int>(inv32));
  const __m256i vperiod = _mm256_set1_epi32(static_cast<int>(period_));
  const __m256i vperiod_m1 =
      _mm256_set1_epi32(static_cast<int>(period_ - 1));
  const __m256i vfirst = _mm256_set1_epi32(static_cast<int>(m.first));
  const __m256i vend = _mm256_set1_epi32(static_cast<int>(m.first + m.count));
  const __m256i vbucket0 = _mm256_set1_epi32(static_cast<int>(m.bucket0));
  const __m128i vshift =
      _mm_cvtsi32_si128(static_cast<int>(32 - m.log2b));

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + i));
    // tau = t % period via the truncated reciprocal: the quotient estimate
    // undershoots by at most one, fixed with a single conditional subtract.
    const __m256i q = mul_hi_epu32(t, vinv);
    __m256i tau = _mm256_sub_epi32(t, _mm256_mullo_epi32(q, vperiod));
    const __m256i over = _mm256_cmpgt_epi32(tau, vperiod_m1);
    tau = _mm256_sub_epi32(tau, _mm256_and_si256(over, vperiod));
    // bucket = (tau * inv) >> (32 - log2b); tau * inv < 2^32, so the low
    // 32-bit product is exact.
    const __m256i bucket =
        _mm256_srl_epi32(_mm256_mullo_epi32(tau, vinv), vshift);
    __m256i pos = _mm256_i32gather_epi32(
        bidx_base, _mm256_add_epi32(vbucket0, bucket), 4);
    for (;;) {
      const __m256i in_range = _mm256_cmpgt_epi32(vend, pos);
      if (_mm256_testz_si256(in_range, in_range)) break;
      const __m256i dep = _mm256_mask_i32gather_epi32(
          tau, pts_base, _mm256_slli_epi32(pos, 1), in_range, 4);
      const __m256i advance =
          _mm256_and_si256(in_range, _mm256_cmpgt_epi32(tau, dep));
      if (_mm256_testz_si256(advance, advance)) break;
      pos = _mm256_sub_epi32(pos, advance);
    }
    pos = _mm256_blendv_epi8(vfirst, pos, _mm256_cmpgt_epi32(vend, pos));
    const __m256i p2 = _mm256_slli_epi32(pos, 1);
    const __m256i dep = _mm256_i32gather_epi32(pts_base + 0, p2, 4);
    const __m256i dur = _mm256_i32gather_epi32(pts_base + 1, p2, 4);
    const __m256i wrap = _mm256_cmpgt_epi32(tau, dep);
    const __m256i wait = _mm256_add_epi32(_mm256_sub_epi32(dep, tau),
                                          _mm256_and_si256(wrap, vperiod));
    const __m256i res = _mm256_add_epi32(t, _mm256_add_epi32(wait, dur));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), res);
  }
  arrival_tn_scalar(f, ts + i, n - i, out + i);
}

// The cross-query kernel: per-lane words AND per-lane entry times. The
// masked metadata/point gathers are arrival_n's (const lanes and empty
// functions never read the pool arrays); the per-lane reduced time and the
// per-lane bucket come from arrival_tn's reciprocal arithmetic, except that
// log2b now differs per lane, so the bucket shift is the variable-count
// _mm256_srlv_epi32 instead of a broadcast shift.
[[gnu::target("avx2")]] void TtfPool::arrival_ptn_avx2(
    const std::uint32_t* entries, const Time* ts, std::size_t n,
    Time* out) const {
  const int* const meta_base = reinterpret_cast<const int*>(meta_.data());
  const int* const bidx_base = reinterpret_cast<const int*>(bucket_idx_.data());
  const int* const pts_base = reinterpret_cast<const int*>(points_.data());
  const std::uint32_t inv32 = static_cast<std::uint32_t>(inv_period_);

  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vinv = _mm256_set1_epi32(static_cast<int>(inv32));
  const __m256i vperiod = _mm256_set1_epi32(static_cast<int>(period_));
  const __m256i vperiod_m1 = _mm256_set1_epi32(static_cast<int>(period_ - 1));
  const __m256i v32 = _mm256_set1_epi32(32);
  const __m256i vinf = _mm256_set1_epi32(static_cast<int>(kInfTime));
  const __m256i vconst = _mm256_set1_epi32(static_cast<int>(kConstFlag));

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(entries + i));
    const __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + i));
    const __m256i is_const = _mm256_srai_epi32(w, 31);
    const __m256i is_ttf = _mm256_cmpeq_epi32(is_const, vzero);
    const __m256i f4 = _mm256_slli_epi32(_mm256_andnot_si256(is_const, w), 2);
    const __m256i first =
        _mm256_mask_i32gather_epi32(vzero, meta_base + 0, f4, is_ttf, 4);
    const __m256i count =
        _mm256_mask_i32gather_epi32(vzero, meta_base + 1, f4, is_ttf, 4);
    const __m256i bucket0 =
        _mm256_mask_i32gather_epi32(vzero, meta_base + 2, f4, is_ttf, 4);
    const __m256i log2b =
        _mm256_mask_i32gather_epi32(vzero, meta_base + 3, f4, is_ttf, 4);
    // tau = t % period per lane (see arrival_tn_avx2: the truncated
    // reciprocal undershoots by at most one, one conditional subtract).
    const __m256i q = mul_hi_epu32(t, vinv);
    __m256i tau = _mm256_sub_epi32(t, _mm256_mullo_epi32(q, vperiod));
    const __m256i over = _mm256_cmpgt_epi32(tau, vperiod_m1);
    tau = _mm256_sub_epi32(tau, _mm256_and_si256(over, vperiod));
    // bucket = (tau * inv) >> (32 - log2b), both operands per lane now.
    const __m256i bucket = _mm256_srlv_epi32(_mm256_mullo_epi32(tau, vinv),
                                             _mm256_sub_epi32(v32, log2b));
    const __m256i live =
        _mm256_andnot_si256(_mm256_cmpeq_epi32(count, vzero), is_ttf);
    __m256i pos = _mm256_mask_i32gather_epi32(
        vzero, bidx_base, _mm256_add_epi32(bucket0, bucket), live, 4);
    const __m256i end = _mm256_add_epi32(first, count);
    // Linear lower_bound past the bucket entry; masked-off lanes default
    // their gathered departure to their own tau and stop immediately.
    for (;;) {
      const __m256i in_range =
          _mm256_and_si256(_mm256_cmpgt_epi32(end, pos), live);
      if (_mm256_testz_si256(in_range, in_range)) break;
      const __m256i dep = _mm256_mask_i32gather_epi32(
          tau, pts_base, _mm256_slli_epi32(pos, 1), in_range, 4);
      const __m256i advance =
          _mm256_and_si256(in_range, _mm256_cmpgt_epi32(tau, dep));
      if (_mm256_testz_si256(advance, advance)) break;
      pos = _mm256_sub_epi32(pos, advance);
    }
    pos = _mm256_blendv_epi8(first, pos, _mm256_cmpgt_epi32(end, pos));
    const __m256i p2 = _mm256_slli_epi32(pos, 1);
    const __m256i dep =
        _mm256_mask_i32gather_epi32(vzero, pts_base + 0, p2, live, 4);
    const __m256i dur =
        _mm256_mask_i32gather_epi32(vzero, pts_base + 1, p2, live, 4);
    const __m256i wrap = _mm256_cmpgt_epi32(tau, dep);
    const __m256i wait = _mm256_add_epi32(_mm256_sub_epi32(dep, tau),
                                          _mm256_and_si256(wrap, vperiod));
    __m256i res = _mm256_add_epi32(t, _mm256_add_epi32(wait, dur));
    res = _mm256_blendv_epi8(vinf, res, live);  // empty functions
    const __m256i cres = _mm256_add_epi32(t, _mm256_andnot_si256(vconst, w));
    res = _mm256_blendv_epi8(res, cres, is_const);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), res);
  }
  arrival_ptn_scalar(entries + i, ts + i, n - i, out + i);
}

#endif  // PCONN_HAVE_AVX2_DISPATCH

void TtfPool::arrival_n(const std::uint32_t* entries, std::size_t n, Time t,
                        Time* out) const {
#if PCONN_HAVE_AVX2_DISPATCH
  if (n >= 8 && cpu_has_avx2()) {
    arrival_n_avx2(entries, n, t, out);
    return;
  }
#endif
  arrival_n_scalar(entries, n, t, out);
}

void TtfPool::arrival_tn(std::uint32_t f, const Time* ts, std::size_t n,
                         Time* out) const {
#if PCONN_HAVE_AVX2_DISPATCH
  // period_ == 1 would need the 33-bit reciprocal; never a real timetable.
  if (n >= 8 && period_ > 1 && cpu_has_avx2()) {
    arrival_tn_avx2(f, ts, n, out);
    return;
  }
#endif
  arrival_tn_scalar(f, ts, n, out);
}

void TtfPool::arrival_ptn(const std::uint32_t* entries, const Time* ts,
                          std::size_t n, Time* out) const {
#if PCONN_HAVE_AVX2_DISPATCH
  // Same period_ == 1 exclusion as arrival_tn (the reciprocal lanes).
  if (n >= 8 && period_ > 1 && cpu_has_avx2()) {
    arrival_ptn_avx2(entries, ts, n, out);
    return;
  }
#endif
  arrival_ptn_scalar(entries, ts, n, out);
}

}  // namespace pconn
