// Piecewise-linear periodic travel-time functions (Section 2 of the paper).
//
// A travel-time function f: Pi -> N0 in a public transportation network is
// fully described by its connection points P(f) = {(tau, w)}: depart no
// earlier than tau on the connection leaving at tau and ride for w seconds;
// f(t) = Delta(t, tau) + w for the point minimizing the wait Delta(t, tau).
//
// Construction prunes *dominated* points — points whose connection is never
// the best choice because waiting for a later one (possibly wrapping past
// midnight) arrives no later. After pruning, "take the next departure" is
// optimal and f satisfies the FIFO property f(t1) <= Delta(t1,t2) + f(t2)
// cyclically, which the query algorithms rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "timetable/types.hpp"

namespace pconn {

/// One connection point: departure time in [0, period), ride duration.
struct TtfPoint {
  Time dep;
  Time dur;
  bool operator==(const TtfPoint&) const = default;
};

class Ttf {
 public:
  Ttf() = default;

  /// Builds from arbitrary points: sorts by departure, keeps the fastest
  /// ride per departure time, prunes dominated points (cyclically).
  /// Departures must already lie in [0, period).
  static Ttf build(std::vector<TtfPoint> points, Time period);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const std::vector<TtfPoint>& points() const { return points_; }
  Time period() const { return period_; }

  /// Travel time when showing up at absolute time t: waiting for the next
  /// departure (cyclically) plus its ride. kInfTime if the function is empty.
  Time eval(Time t) const;

  /// Absolute arrival when entering the edge at absolute time t.
  Time arrival(Time t) const {
    Time w = eval(t);
    return w == kInfTime ? kInfTime : t + w;
  }

  /// The connection point used when showing up at absolute time t, as an
  /// index into points(). Used for journey unpacking.
  std::size_t point_used(Time t) const;

  /// Smallest ride duration over all points (lower bound for the static
  /// contraction in transfer-station selection). kInfTime if empty.
  Time min_duration() const;

  /// Verifies FIFO cyclically over all pairs of points (test helper).
  bool is_fifo() const;

 private:
  std::vector<TtfPoint> points_;  // sorted by dep, unique deps
  Time period_ = kDayseconds;
};

}  // namespace pconn
