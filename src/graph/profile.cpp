#include "graph/profile.hpp"

#include <algorithm>
#include <cassert>

namespace pconn {

void reduce_profile_into(const Profile& raw, Time period, Profile& out) {
  assert(&raw != &out);
  out.clear();
  out.reserve(raw.size());
  // Backward scan: keep a point only if it arrives strictly earlier than
  // every kept point departing later the same day.
  Time min_arr = kInfTime;
  for (std::size_t i = raw.size(); i-- > 0;) {
    const ProfilePoint& p = raw[i];
    if (p.arr == kInfTime) continue;
    assert(p.dep < period && p.arr >= p.dep);
    assert(i == 0 || raw[i - 1].dep <= p.dep);  // input sorted by departure
    if (p.arr < min_arr) {
      out.push_back(p);
      min_arr = p.arr;
    }
  }
  std::reverse(out.begin(), out.end());
  // Equal departures can survive the scan (arrivals are strictly increasing
  // afterwards, so the first of an equal-departure run is the best): dedup.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const ProfilePoint& a, const ProfilePoint& b) {
                          return a.dep == b.dep;
                        }),
            out.end());

  // Cyclic pass: a late-evening point may still be dominated by an
  // early-morning departure of the next period. After the linear scan,
  // arrivals increase with departures, so the earliest arrival is
  // out.front().arr and only tail points can be dominated by it + period.
  if (out.size() > 1) {
    const Time wrap_min = out.front().arr + period;
    while (out.size() > 1 && out.back().arr >= wrap_min) out.pop_back();
  }
}

Profile reduce_profile(const Profile& raw, Time period) {
  Profile out;
  reduce_profile_into(raw, period, out);
  return out;
}

std::uint32_t profile_point_used(const Profile& profile, Time t, Time period) {
  if (profile.empty()) return kNoConn;
  Time tau = t % period;
  auto it = std::lower_bound(
      profile.begin(), profile.end(), tau,
      [](const ProfilePoint& p, Time v) { return p.dep < v; });
  if (it == profile.end()) it = profile.begin();
  return static_cast<std::uint32_t>(it - profile.begin());
}

Time eval_profile(const Profile& profile, Time t, Time period) {
  std::uint32_t i = profile_point_used(profile, t, period);
  if (i == kNoConn) return kInfTime;
  const ProfilePoint& p = profile[i];
  return t + delta(t, p.dep, period) + (p.arr - p.dep);
}

bool profile_is_fifo(const Profile& profile, Time period) {
  for (const ProfilePoint& a : profile) {
    for (const ProfilePoint& b : profile) {
      Time travel_a = eval_profile(profile, a.dep, period) - a.dep;
      Time via_b = delta(a.dep, b.dep, period) +
                   (eval_profile(profile, b.dep, period) - b.dep);
      if (travel_a > via_b) return false;
    }
  }
  return true;
}

}  // namespace pconn
