#include "graph/profile.hpp"

#include <algorithm>
#include <cassert>

namespace pconn {

Profile reduce_profile(const Profile& raw, Time period) {
  Profile out;
  reduce_profile_into(raw, period, out);
  return out;
}

std::uint32_t profile_point_used(const Profile& profile, Time t, Time period) {
  if (profile.empty()) return kNoConn;
  Time tau = t % period;
  auto it = std::lower_bound(
      profile.begin(), profile.end(), tau,
      [](const ProfilePoint& p, Time v) { return p.dep < v; });
  if (it == profile.end()) it = profile.begin();
  return static_cast<std::uint32_t>(it - profile.begin());
}

Time eval_profile(const Profile& profile, Time t, Time period) {
  std::uint32_t i = profile_point_used(profile, t, period);
  if (i == kNoConn) return kInfTime;
  const ProfilePoint& p = profile[i];
  return t + delta(t, p.dep, period) + (p.arr - p.dep);
}

bool profile_is_fifo(const Profile& profile, Time period) {
  for (const ProfilePoint& a : profile) {
    for (const ProfilePoint& b : profile) {
      Time travel_a = eval_profile(profile, a.dep, period) - a.dep;
      Time via_b = delta(a.dep, b.dep, period) +
                   (eval_profile(profile, b.dep, period) - b.dep);
      if (travel_a > via_b) return false;
    }
  }
  return true;
}

}  // namespace pconn
