// The station graph G_S (paper Section 4): an edge (S1, S2) whenever at
// least one train runs from S1 directly to S2. Carries per-edge lower
// bounds (fastest ride) for the static contraction used in transfer-station
// selection, and the reverse adjacency for the via-station DFS.
//
// Storage is structure-of-arrays per direction: heads, min-ride lower
// bounds and connection counts live in parallel arrays, so the via DFS —
// which only needs heads — streams a dense 4-byte-per-edge array instead
// of striding over 12-byte AoS records. The `Edge` struct survives as a
// decoded per-edge view for non-hot callers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "timetable/timetable.hpp"

namespace pconn {

class StationGraph {
 public:
  /// Decoded view of one edge (storage is SoA; assembled on access).
  struct Edge {
    StationId head;
    Time min_ride;            // fastest elementary connection on this edge
    std::uint32_t num_conns;  // how many elementary connections back it
  };

  static StationGraph build(const Timetable& tt);

  std::size_t num_stations() const { return fwd_begin_.size() - 1; }

  // --- SoA access (the via DFS streams the reverse head array) ----------
  std::uint32_t out_begin(StationId s) const { return fwd_begin_[s]; }
  std::uint32_t out_end(StationId s) const { return fwd_begin_[s + 1]; }
  std::uint32_t in_begin(StationId s) const { return rev_begin_[s]; }
  std::uint32_t in_end(StationId s) const { return rev_begin_[s + 1]; }
  /// Heads of the out-edges of s, as a dense span.
  std::span<const StationId> out_heads(StationId s) const {
    return {fwd_head_.data() + fwd_begin_[s], fwd_head_.data() + fwd_begin_[s + 1]};
  }
  /// Heads of the in-edges of s (tails of edges into s), as a dense span.
  std::span<const StationId> in_heads(StationId s) const {
    return {rev_head_.data() + rev_begin_[s], rev_head_.data() + rev_begin_[s + 1]};
  }
  Time out_min_ride(std::uint32_t e) const { return fwd_min_ride_[e]; }
  std::uint32_t out_num_conns(std::uint32_t e) const { return fwd_num_conns_[e]; }

  // --- decoded compat view ----------------------------------------------
  class EdgeIterator {
   public:
    EdgeIterator(const StationId* heads, const Time* rides,
                 const std::uint32_t* conns, std::uint32_t e)
        : heads_(heads), rides_(rides), conns_(conns), e_(e) {}
    Edge operator*() const { return {heads_[e_], rides_[e_], conns_[e_]}; }
    EdgeIterator& operator++() {
      ++e_;
      return *this;
    }
    bool operator!=(const EdgeIterator& o) const { return e_ != o.e_; }
    bool operator==(const EdgeIterator& o) const { return e_ == o.e_; }

   private:
    const StationId* heads_;
    const Time* rides_;
    const std::uint32_t* conns_;
    std::uint32_t e_;
  };
  struct EdgeRange {
    EdgeIterator first, last;
    EdgeIterator begin() const { return first; }
    EdgeIterator end() const { return last; }
  };
  EdgeRange out_edges(StationId s) const {
    return {{fwd_head_.data(), fwd_min_ride_.data(), fwd_num_conns_.data(),
             fwd_begin_[s]},
            {fwd_head_.data(), fwd_min_ride_.data(), fwd_num_conns_.data(),
             fwd_begin_[s + 1]}};
  }
  EdgeRange in_edges(StationId s) const {
    return {{rev_head_.data(), rev_min_ride_.data(), rev_num_conns_.data(),
             rev_begin_[s]},
            {rev_head_.data(), rev_min_ride_.data(), rev_num_conns_.data(),
             rev_begin_[s + 1]}};
  }

  std::size_t out_degree(StationId s) const {
    return fwd_begin_[s + 1] - fwd_begin_[s];
  }
  std::size_t in_degree(StationId s) const {
    return rev_begin_[s + 1] - rev_begin_[s];
  }
  /// Undirected degree: number of distinct neighbors in either direction
  /// (the paper's "degree in the station graph" for deg > k selection).
  std::size_t degree(StationId s) const;

  /// Footprint in bytes (bench reporting).
  std::size_t memory_bytes() const;

 private:
  std::vector<std::uint32_t> fwd_begin_, rev_begin_;
  std::vector<StationId> fwd_head_, rev_head_;
  std::vector<Time> fwd_min_ride_, rev_min_ride_;
  std::vector<std::uint32_t> fwd_num_conns_, rev_num_conns_;
};

}  // namespace pconn
