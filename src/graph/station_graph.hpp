// The station graph G_S (paper Section 4): an edge (S1, S2) whenever at
// least one train runs from S1 directly to S2. Carries per-edge lower
// bounds (fastest ride) for the static contraction used in transfer-station
// selection, and the reverse adjacency for the via-station DFS.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "timetable/timetable.hpp"

namespace pconn {

class StationGraph {
 public:
  struct Edge {
    StationId head;
    Time min_ride;            // fastest elementary connection on this edge
    std::uint32_t num_conns;  // how many elementary connections back it
  };

  static StationGraph build(const Timetable& tt);

  std::size_t num_stations() const { return fwd_begin_.size() - 1; }

  std::span<const Edge> out_edges(StationId s) const {
    return {fwd_.data() + fwd_begin_[s], fwd_.data() + fwd_begin_[s + 1]};
  }
  std::span<const Edge> in_edges(StationId s) const {
    return {rev_.data() + rev_begin_[s], rev_.data() + rev_begin_[s + 1]};
  }

  std::size_t out_degree(StationId s) const {
    return fwd_begin_[s + 1] - fwd_begin_[s];
  }
  std::size_t in_degree(StationId s) const {
    return rev_begin_[s + 1] - rev_begin_[s];
  }
  /// Undirected degree: number of distinct neighbors in either direction
  /// (the paper's "degree in the station graph" for deg > k selection).
  std::size_t degree(StationId s) const;

 private:
  std::vector<std::uint32_t> fwd_begin_, rev_begin_;
  std::vector<Edge> fwd_, rev_;
};

}  // namespace pconn
