#include "graph/td_graph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace pconn {

TdGraph TdGraph::build(const Timetable& tt) {
  return build(tt, TtfIndexOptions::from_env());
}

TdGraph TdGraph::build(const Timetable& tt, const TtfIndexOptions& idx) {
  TdGraph g;
  g.num_stations_ = tt.num_stations();
  g.period_ = tt.period();
  g.ttfs_.reset(tt.period(), idx);

  // Node numbering: stations first, then route nodes grouped by route.
  g.station_of_.resize(tt.num_stations());
  for (StationId s = 0; s < tt.num_stations(); ++s) g.station_of_[s] = s;
  g.route_node_begin_.resize(tt.num_routes());
  for (RouteId r = 0; r < tt.num_routes(); ++r) {
    g.route_node_begin_[r] = static_cast<NodeId>(g.station_of_.size());
    for (StationId s : tt.route(r).stops) g.station_of_.push_back(s);
  }

  // Collect edges per node, already in the packed SoA encoding.
  struct RawEdge {
    NodeId head;
    std::uint32_t word;
  };
  // The packed word encoding steals the top bit for the const flag; a
  // weight that collides with it would silently alias a TTF index in
  // Release builds, so reject it loudly (a transfer time this large is a
  // data error anyway — the builder already caps it at the period).
  auto const_word = [](Time weight) {
    if (weight >= kConstFlag) {
      throw std::invalid_argument(
          "td_graph: constant edge weight " + std::to_string(weight) +
          " exceeds the encodable range");
    }
    return kConstFlag | static_cast<std::uint32_t>(weight);
  };
  std::vector<std::vector<RawEdge>> adj(g.station_of_.size());

  for (RouteId r = 0; r < tt.num_routes(); ++r) {
    const Route& route = tt.route(r);
    const std::size_t n = route.stops.size();
    for (std::size_t k = 0; k < n; ++k) {
      NodeId rn = g.route_node(r, static_cast<std::uint32_t>(k));
      StationId s = route.stops[k];
      // Alighting is free.
      adj[rn].push_back({g.station_node(s), const_word(0)});
      // Boarding pays the transfer time; boarding at the terminus is useless.
      if (k + 1 < n) {
        adj[g.station_node(s)].push_back({rn, const_word(tt.transfer_time(s))});
      }
      // Travel edge with one connection point per trip.
      if (k + 1 < n) {
        std::vector<TtfPoint> pts;
        pts.reserve(route.trips.size());
        for (TrainId t : route.trips) {
          const Trip& trip = tt.trip(t);
          Time dep = trip.departures[k] % tt.period();
          Time dur = trip.arrivals[k + 1] - trip.departures[k];
          pts.push_back({dep, dur});
        }
        std::uint32_t ttf_idx =
            g.ttfs_.add(Ttf::build(std::move(pts), tt.period()));
        adj[rn].push_back(
            {g.route_node(r, static_cast<std::uint32_t>(k + 1)), ttf_idx});
      }
    }
  }

  g.edge_begin_.assign(g.station_of_.size() + 1, 0);
  for (std::size_t v = 0; v < adj.size(); ++v) {
    g.edge_begin_[v + 1] = static_cast<std::uint32_t>(adj[v].size());
    g.max_out_degree_ =
        std::max(g.max_out_degree_, static_cast<std::uint32_t>(adj[v].size()));
  }
  std::partial_sum(g.edge_begin_.begin(), g.edge_begin_.end(),
                   g.edge_begin_.begin());
  g.heads_.reserve(g.edge_begin_.back());
  g.ttf_or_weight_.reserve(g.edge_begin_.back());
  g.ttf_out_degree_.reserve(adj.size());
  for (auto& out : adj) {
    std::size_t ttf_edges = 0;
    for (const RawEdge& e : out) {
      g.heads_.push_back(e.head);
      g.ttf_or_weight_.push_back(e.word);
      if (!word_is_const(e.word)) ++ttf_edges;
    }
    g.ttf_out_degree_.push_back(
        static_cast<std::uint8_t>(std::min<std::size_t>(ttf_edges, 255)));
  }
  return g;
}

std::size_t TdGraph::memory_bytes() const {
  std::size_t bytes = 0;
  bytes += station_of_.size() * sizeof(StationId);
  bytes += route_node_begin_.size() * sizeof(NodeId);
  bytes += edge_begin_.size() * sizeof(std::uint32_t);
  bytes += heads_.size() * sizeof(NodeId);
  bytes += ttf_or_weight_.size() * sizeof(std::uint32_t);
  bytes += ttfs_.memory_bytes();
  return bytes;
}

}  // namespace pconn
