#include "graph/overlay_graph.hpp"

namespace pconn {

void OverlayGraph::build_down_pos() {
  down_pos_.assign(rank_.size(), kNoDownPos);
  for (std::size_t i = 0; i < down_node_.size(); ++i) {
    down_pos_[down_node_[i]] = static_cast<std::uint32_t>(i);
  }
}

OverlayGraph::ProvenanceIndex OverlayGraph::build_provenance_index() const {
  ProvenanceIndex idx;
  const std::uint32_t keys = num_origin_keys();
  idx.begin.assign(keys + 1, 0);
  for (const ShortcutRec& r : shortcuts_) {
    ++idx.begin[origin_key(r.a) + 1];
    ++idx.begin[origin_key(r.b) + 1];
  }
  for (std::uint32_t k = 0; k < keys; ++k) idx.begin[k + 1] += idx.begin[k];
  idx.recs.resize(idx.begin[keys]);
  std::vector<std::uint32_t> cursor(idx.begin.begin(), idx.begin.end() - 1);
  for (std::uint32_t r = 0; r < shortcuts_.size(); ++r) {
    idx.recs[cursor[origin_key(shortcuts_[r].a)]++] = r;
    idx.recs[cursor[origin_key(shortcuts_[r].b)]++] = r;
  }
  return idx;
}

std::size_t OverlayGraph::memory_bytes() const {
  std::size_t bytes = 0;
  bytes += rank_.size() * sizeof(std::uint32_t);
  bytes += board_shift_.size() * sizeof(Time);
  bytes += edge_begin_.size() * sizeof(std::uint32_t);
  bytes += heads_.size() * sizeof(NodeId);
  bytes += words_.size() * sizeof(std::uint32_t);
  bytes += origins_.size() * sizeof(std::uint32_t);
  bytes += ttf_out_degree_.size() * sizeof(std::uint8_t);
  bytes += shortcuts_.size() * sizeof(ShortcutRec);
  bytes += down_node_.size() * sizeof(NodeId);
  bytes += down_begin_.size() * sizeof(std::uint32_t);
  bytes += down_tails_.size() * sizeof(NodeId);
  bytes += down_words_.size() * sizeof(std::uint32_t);
  bytes += down_pos_.size() * sizeof(std::uint32_t);
  bytes += ttfs_.memory_bytes();
  return bytes;
}

std::size_t OverlayGraph::shortcut_points() const {
  std::size_t pts = 0;
  for (std::uint32_t f = num_base_ttfs_;
       f < static_cast<std::uint32_t>(ttfs_.size()); ++f) {
    pts += ttfs_.points(f).size();
  }
  return pts;
}

}  // namespace pconn
