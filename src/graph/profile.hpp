// Travel-time profiles dist(S, T, ·) and the paper's connection reduction.
//
// A profile is the result side of a profile query: a sequence of
// (departure at S, arrival at T) pairs, one per *useful* outgoing
// connection, sorted by departure. Departures lie in [0, period); arrivals
// are absolute (>= dep, may exceed the period).
#pragma once

#include <cstdint>
#include <vector>

#include "timetable/types.hpp"

namespace pconn {

struct ProfilePoint {
  Time dep;  // departure at the source, in [0, period)
  Time arr;  // absolute arrival at the target for that departure
  bool operator==(const ProfilePoint&) const = default;
};

using Profile = std::vector<ProfilePoint>;

/// The paper's connection reduction (Section 3.1): scan backward keeping
/// the minimum arrival; drop every point whose arrival is not strictly
/// earlier than the best later-departing alternative. Points with
/// arr == kInfTime (pruned connections) are dropped up front. A final
/// cyclic pass removes tail points dominated by next-day departures, so the
/// result is FIFO as a periodic function. Input must be sorted by dep.
Profile reduce_profile(const Profile& raw, Time period);

/// Allocation-free variant for warm query paths: writes the reduced profile
/// into `out`, reusing its capacity. `&raw != &out`.
void reduce_profile_into(const Profile& raw, Time period, Profile& out);

/// Earliest absolute arrival when departing the source at absolute time t.
/// The profile must be reduced (FIFO); returns kInfTime for empty profiles.
Time eval_profile(const Profile& profile, Time t, Time period);

/// Index of the profile point eval_profile would use (kNoConn if empty).
std::uint32_t profile_point_used(const Profile& profile, Time t, Time period);

/// FIFO check over a reduced profile (test helper): departing later never
/// yields a strictly earlier arrival, cyclically.
bool profile_is_fifo(const Profile& profile, Time period);

}  // namespace pconn
