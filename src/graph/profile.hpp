// Travel-time profiles dist(S, T, ·) and the paper's connection reduction.
//
// A profile is the result side of a profile query: a sequence of
// (departure at S, arrival at T) pairs, one per *useful* outgoing
// connection, sorted by departure. Departures lie in [0, period); arrivals
// are absolute (>= dep, may exceed the period).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "timetable/types.hpp"

namespace pconn {

struct ProfilePoint {
  Time dep;  // departure at the source, in [0, period)
  Time arr;  // absolute arrival at the target for that departure
  bool operator==(const ProfilePoint&) const = default;
};

using Profile = std::vector<ProfilePoint>;

/// Merge order of the label-correcting engines (flat and overlay): the
/// lexicographic (departure, arrival) order their std::merge unions use.
/// One definition so the two engines can never silently diverge — their
/// byte-identity relies on sharing it.
inline bool profile_point_less(const ProfilePoint& x, const ProfilePoint& y) {
  return x.dep != y.dep ? x.dep < y.dep : x.arr < y.arr;
}

/// Fold-scheduling policy of the overlay LC engine's deferred k-way merge
/// (overlay_query.cpp): a candidate run shorter than this goes to the
/// head's pending pile even when the head label is stale, instead of
/// paying a whole-label pairwise merge per run. Sparse rail networks'
/// shortcut fans emit mostly 1-3 point runs into hub stations; batching
/// them into the next settle's single k-way fold is what recovers the
/// merge cost there. Exactness does not depend on the value: the
/// settle-time fold reduces label + pending in one pass regardless of
/// which side a point arrived on, so any threshold yields byte-identical
/// profiles (tests/overlay_test.cpp) — this only tunes when work happens.
constexpr std::size_t kLcEagerFoldMinRun = 8;

/// The paper's connection reduction (Section 3.1): scan backward keeping
/// the minimum arrival; drop every point whose arrival is not strictly
/// earlier than the best later-departing alternative. Points with
/// arr == kInfTime (pruned connections) are dropped up front. A final
/// cyclic pass removes tail points dominated by next-day departures, so the
/// result is FIFO as a periodic function. Input must be sorted by dep.
Profile reduce_profile(const Profile& raw, Time period);

/// Allocation-free variant for warm query paths: writes the reduced profile
/// into `out`, reusing its capacity. `&raw != &out`. Templated over the
/// vector types so arena-backed profile buffers (the LC baseline's pooled
/// merge scratch) reduce through the same code path as plain Profiles.
template <typename VecIn, typename VecOut>
void reduce_profile_into(const VecIn& raw, Time period, VecOut& out) {
  assert(static_cast<const void*>(&raw) != static_cast<const void*>(&out));
  out.clear();
  out.reserve(raw.size());
  // Backward scan: keep a point only if it arrives strictly earlier than
  // every kept point departing later the same day.
  Time min_arr = kInfTime;
  for (std::size_t i = raw.size(); i-- > 0;) {
    const ProfilePoint& p = raw[i];
    if (p.arr == kInfTime) continue;
    assert(p.dep < period && p.arr >= p.dep);
    assert(i == 0 || raw[i - 1].dep <= p.dep);  // input sorted by departure
    if (p.arr < min_arr) {
      out.push_back(p);
      min_arr = p.arr;
    }
  }
  std::reverse(out.begin(), out.end());
  // Equal departures can survive the scan (arrivals are strictly increasing
  // afterwards, so the first of an equal-departure run is the best): dedup.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const ProfilePoint& a, const ProfilePoint& b) {
                          return a.dep == b.dep;
                        }),
            out.end());

  // Cyclic pass: a late-evening point may still be dominated by an
  // early-morning departure of the next period. After the linear scan,
  // arrivals increase with departures, so the earliest arrival is
  // out.front().arr and only tail points can be dominated by it + period.
  if (out.size() > 1) {
    const Time wrap_min = out.front().arr + period;
    while (out.size() > 1 && out.back().arr >= wrap_min) out.pop_back();
  }
}

/// Earliest absolute arrival when departing the source at absolute time t.
/// The profile must be reduced (FIFO); returns kInfTime for empty profiles.
Time eval_profile(const Profile& profile, Time t, Time period);

/// Index of the profile point eval_profile would use (kNoConn if empty).
std::uint32_t profile_point_used(const Profile& profile, Time t, Time period);

/// FIFO check over a reduced profile (test helper): departing later never
/// yields a strictly earlier arrival, cyclically.
bool profile_is_fifo(const Profile& profile, Time period);

}  // namespace pconn
